//===- pipeline/Batch.cpp - Parallel batch-compilation driver -------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Batch.h"

#include "machine/MachineModel.h"
#include "pipeline/Cache.h"
#include "pipeline/Report.h"
#include "support/FaultInjection.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace pira;

PIRA_STAT(NumBatchesCompiled, "Batch compilations driven");
PIRA_STAT(NumBatchItemsCompiled, "Functions compiled via compileBatch");
PIRA_STAT(NumGuardedCompiles, "Functions run through the compile guard");
PIRA_STAT(NumBudgetRejections, "Functions rejected by the resource budget");
PIRA_STAT(NumDegradedFunctions,
          "Functions rescued by a lower ladder rung than requested");
PIRA_STAT(NumFailedFunctions, "Functions that failed every ladder rung");
PIRA_STAT(NumCapturedTaskExceptions,
          "Phase exceptions captured by the compile guard");

/// Marks \p R failed with both the legacy string and the structured
/// diagnostic (the Strategies-side twin is file-static).
static void failResult(PipelineResult &R, Status S) {
  R.Success = false;
  R.Error = S.toString();
  R.Diag = std::move(S);
}

/// One ladder rung under the guard: arms the watchdog, runs the
/// strategy, and converts anything thrown into a structured failure.
static PipelineResult runRungGuarded(StrategyKind Kind, const Function &Input,
                                     const MachineModel &Machine,
                                     const BatchOptions &Opts) {
  PipelineResult R;
  try {
    deadline::ScopedDeadline Watchdog(Opts.Budget.DeadlineMs);
    R = Opts.Measure
            ? runAndMeasure(Kind, Input, Machine, Opts.Pinter, Opts.Seed)
            : runStrategy(Kind, Input, Machine, Opts.Pinter);
  } catch (const faultinject::FaultInjectedError &E) {
    ++NumCapturedTaskExceptions;
    failResult(R, Status::error(ErrorCode::FaultInjected, "guard", E.what()));
  } catch (const deadline::DeadlineExceededError &) {
    ++NumCapturedTaskExceptions;
    failResult(R, Status::error(
                      ErrorCode::DeadlineExceeded, "guard",
                      "watchdog deadline exceeded (budget " +
                          std::to_string(Opts.Budget.DeadlineMs) + " ms)"));
  } catch (const std::exception &E) {
    ++NumCapturedTaskExceptions;
    failResult(R, Status::error(ErrorCode::Internal, "guard",
                                std::string("unhandled exception: ") +
                                    E.what()));
  } catch (...) {
    ++NumCapturedTaskExceptions;
    failResult(R, Status::error(ErrorCode::Internal, "guard",
                                "unhandled non-standard exception"));
  }
  return R;
}

GuardedResult pira::compileFunctionGuarded(const Function &Input,
                                           const MachineModel &Machine,
                                           const BatchOptions &Opts) {
  PIRA_TIME_SCOPE("batch/guarded-compile");
  ++NumGuardedCompiles;
  GuardedResult Out;
  Out.Outcome.Requested = strategyName(Opts.Strategy);
  std::string FnFrame = "function @" + Input.name();

  // Budget gate: reject oversized inputs before any phase burns time on
  // them. Deterministic — a pure function of the input.
  bool InjectedBudget = faultinject::shouldFire("budget.instructions");
  uint64_t Insts = Input.totalInstructions();
  if (InjectedBudget ||
      (Opts.Budget.MaxInstructions != 0 &&
       Insts > Opts.Budget.MaxInstructions)) {
    ++NumBudgetRejections;
    Status S =
        InjectedBudget
            ? Status::error(ErrorCode::FaultInjected, "budget",
                            "injected instruction-budget overrun")
            : Status::error(ErrorCode::ResourceExhausted, "budget",
                            std::to_string(Insts) +
                                " instructions exceed the budget of " +
                                std::to_string(Opts.Budget.MaxInstructions));
    S.addContext(FnFrame);
    failResult(Out.Result, std::move(S));
    return Out;
  }
  if (Opts.Budget.MaxBlocks != 0 && Input.numBlocks() > Opts.Budget.MaxBlocks) {
    ++NumBudgetRejections;
    Status S = Status::error(
        ErrorCode::ResourceExhausted, "budget",
        std::to_string(Input.numBlocks()) +
            " blocks exceed the budget of " +
            std::to_string(Opts.Budget.MaxBlocks));
    S.addContext(FnFrame);
    failResult(Out.Result, std::move(S));
    return Out;
  }

  // The degradation ladder: requested strategy first, then Chaitin on
  // the plain interference graph, then the spill-everywhere baseline.
  std::vector<StrategyKind> Rungs = {Opts.Strategy};
  if (Opts.Degrade) {
    if (Opts.Strategy != StrategyKind::AllocFirst &&
        Opts.Strategy != StrategyKind::SpillAll)
      Rungs.push_back(StrategyKind::AllocFirst);
    if (Opts.Strategy != StrategyKind::SpillAll)
      Rungs.push_back(StrategyKind::SpillAll);
  }

  for (unsigned I = 0; I != Rungs.size(); ++I) {
    PipelineResult R = runRungGuarded(Rungs[I], Input, Machine, Opts);
    R.Diag.addContext("rung " + std::string(strategyName(Rungs[I])));
    R.Diag.addContext(FnFrame);
    Out.Outcome.Used = strategyName(Rungs[I]);
    Out.Outcome.Rung = I;
    if (R.Success) {
      Out.Outcome.Degraded = I != 0;
      if (Out.Outcome.Degraded)
        ++NumDegradedFunctions;
      Out.Result = std::move(R);
      return Out;
    }
    // A blown deadline or budget would blow again on a retry that
    // starts from the same input; stop the ladder there.
    bool Fatal = R.Diag.code() == ErrorCode::DeadlineExceeded ||
                 R.Diag.code() == ErrorCode::ResourceExhausted;
    Out.Outcome.FailedAttempts.push_back(
        {std::string(strategyName(Rungs[I])), R.Diag});
    Out.Result = std::move(R);
    if (Fatal)
      break;
  }
  ++NumFailedFunctions;
  return Out;
}

BatchResult pira::compileBatch(const std::vector<BatchItem> &Batch,
                               const MachineModel &Machine,
                               const BatchOptions &Opts) {
  PIRA_TIME_SCOPE("batch/compile");
  ++NumBatchesCompiled;
  NumBatchItemsCompiled += Batch.size();

  BatchResult R;
  R.Results.resize(Batch.size());
  R.Outcomes.resize(Batch.size());

  auto CompileOne = [&](unsigned I) {
    // Each slot is written by exactly one worker; the MachineModel and
    // the inputs are read-only. runStrategy copies the function, so the
    // item itself is never mutated. The fault key is the input position,
    // so injected faults hit the same functions for any worker count.
    faultinject::ScopedKey Key(I);

    // Cache lookup precedes the compile guard: a hit stands in for the
    // entire guarded compile (it was inserted by one, and only clean
    // non-degraded successes ever are). The key must be computed under
    // the scoped fault key — armed faults are part of it.
    CompilationCache *Cache = Opts.Cache;
    std::string CacheKey;
    if (Cache != nullptr && Cache->mode() != CacheMode::Off) {
      CacheKey = computeCacheKey(Batch[I].Input, Machine, Opts);
      std::string CachedSerialized;
      std::optional<PipelineResult> Hit =
          Cache->lookup(CacheKey, &CachedSerialized);
      if (Hit) {
        if (Cache->mode() == CacheMode::On) {
          R.Results[I] = std::move(*Hit);
          CompileOutcome O;
          O.Requested = strategyName(Opts.Strategy);
          O.Used = O.Requested;
          R.Outcomes[I] = std::move(O);
          return;
        }
        // Verify mode: recompile anyway and hold the entry to byte
        // identity. The fresh result wins either way, so a poisoned
        // cache can flag but never corrupt a verify run.
        GuardedResult G =
            compileFunctionGuarded(Batch[I].Input, Machine, Opts);
        bool Matches =
            G.Result.Success && !G.Outcome.Degraded &&
            encodeCacheEntry(G.Result, CacheKey).toString(-1) ==
                CachedSerialized;
        if (!Matches)
          Cache->noteVerifyMismatch();
        R.Results[I] = std::move(G.Result);
        R.Outcomes[I] = std::move(G.Outcome);
        return;
      }
    }

    GuardedResult G = compileFunctionGuarded(Batch[I].Input, Machine, Opts);
    // Never cache degraded or failed functions: they must re-walk the
    // ladder (and re-surface their diagnostics) on every run.
    if (!CacheKey.empty() && G.Result.Success && !G.Outcome.Degraded)
      Cache->insert(CacheKey, G.Result);
    R.Results[I] = std::move(G.Result);
    R.Outcomes[I] = std::move(G.Outcome);
  };

  unsigned Jobs = Opts.Jobs == 0 ? ThreadPool::defaultJobCount() : Opts.Jobs;
  Jobs = std::max(1u, Jobs);
  if (Jobs == 1 || Batch.size() <= 1) {
    // Serial reference path: no pool, same observable results.
    R.JobsUsed = 1;
    for (unsigned I = 0, E = static_cast<unsigned>(Batch.size()); I != E; ++I)
      CompileOne(I);
  } else {
    ThreadPool Pool(Jobs);
    R.JobsUsed = Pool.numWorkers();
    Pool.parallelFor(static_cast<unsigned>(Batch.size()), CompileOne);
  }

  // Deterministic merge: aggregates walk the results in input order, and
  // every aggregated field came from a computation independent of worker
  // scheduling.
  for (size_t I = 0; I != R.Results.size(); ++I) {
    const PipelineResult &P = R.Results[I];
    if (!P.Success) {
      ++R.Failed;
      continue;
    }
    ++R.Succeeded;
    if (R.Outcomes[I].Degraded)
      ++R.Degraded;
    R.TotalRegistersUsed = std::max(R.TotalRegistersUsed, P.RegistersUsed);
    R.TotalSpilledWebs += P.SpilledWebs;
    R.TotalSpillInstructions += P.SpillInstructions;
    R.TotalFalseDeps += P.FalseDeps;
    R.TotalStaticCycles += P.StaticCycles;
    R.TotalDynCycles += P.DynCycles;
    R.TotalDynInstructions += P.DynInstructions;
  }
  return R;
}

/// Serializes one ladder record ({"requested", "used", "rung",
/// "attempts": [{"rung", "diagnostic"}]}).
static json::Value outcomeToJson(const CompileOutcome &O) {
  json::Value Out = json::Value::object();
  Out.set("requested", O.Requested);
  Out.set("used", O.Used);
  Out.set("rung", O.Rung);
  json::Value Attempts = json::Value::array();
  for (const CompileAttempt &A : O.FailedAttempts) {
    json::Value One = json::Value::object();
    One.set("rung", A.Rung);
    One.set("diagnostic", A.Diag.toJson());
    Attempts.push(std::move(One));
  }
  Out.set("attempts", std::move(Attempts));
  return Out;
}

json::Value pira::makeBatchStatsReport(
    const BatchResult &R, const std::vector<BatchItem> &Batch,
    const std::string &Strategy, const MachineModel &Machine,
    const std::vector<BatchFailure> &InputFailures,
    const CompilationCache *Cache) {
  json::Value Root = json::Value::object();
  Root.set("schema", StatsSchemaName);
  Root.set("version", StatsSchemaVersion);
  if (!Strategy.empty())
    Root.set("strategy", Strategy);
  Root.set("machine", machineToJson(Machine));

  // Callers that assembled a BatchResult by hand may not have outcome
  // records; the report degrades to the pre-ladder shape then.
  bool HaveOutcomes = R.Outcomes.size() == R.Results.size();

  json::Value Functions = json::Value::array();
  for (size_t I = 0; I != R.Results.size(); ++I) {
    json::Value One = json::Value::object();
    One.set("name", I < Batch.size() ? Batch[I].Name : std::string());
    One.set("pipeline", pipelineResultToJson(R.Results[I]));
    if (HaveOutcomes && (R.Outcomes[I].Rung != 0 ||
                         !R.Outcomes[I].FailedAttempts.empty()))
      One.set("degradation", outcomeToJson(R.Outcomes[I]));
    Functions.push(std::move(One));
  }
  Root.set("functions", std::move(Functions));

  json::Value Agg = json::Value::object();
  Agg.set("items", static_cast<uint64_t>(R.Results.size()));
  Agg.set("succeeded", R.Succeeded);
  Agg.set("failed", R.Failed + static_cast<unsigned>(InputFailures.size()));
  Agg.set("degraded", R.Degraded);
  Agg.set("max_registers_used", R.TotalRegistersUsed);
  Agg.set("spilled_webs", R.TotalSpilledWebs);
  Agg.set("spill_instructions", R.TotalSpillInstructions);
  Agg.set("false_deps", R.TotalFalseDeps);
  Agg.set("static_cycles", R.TotalStaticCycles);
  Agg.set("dyn_cycles", R.TotalDynCycles);
  Agg.set("dyn_instructions", R.TotalDynInstructions);
  Root.set("batch", std::move(Agg));

  // Failures: inputs that never compiled first (they precede the batch
  // in pipeline order), then every function that failed all its rungs.
  json::Value Failures = json::Value::array();
  for (const BatchFailure &F : InputFailures) {
    json::Value One = json::Value::object();
    One.set("name", F.Name);
    One.set("diagnostic", F.Diag.toJson());
    Failures.push(std::move(One));
  }
  for (size_t I = 0; I != R.Results.size(); ++I) {
    if (R.Results[I].Success)
      continue;
    json::Value One = json::Value::object();
    One.set("name", I < Batch.size() ? Batch[I].Name : std::string());
    One.set("diagnostic", R.Results[I].Diag.toJson());
    Failures.push(std::move(One));
  }
  Root.set("failures", std::move(Failures));

  json::Value Degradations = json::Value::array();
  if (HaveOutcomes)
    for (size_t I = 0; I != R.Results.size(); ++I) {
      if (!R.Outcomes[I].Degraded)
        continue;
      json::Value One = json::Value::object();
      One.set("name", I < Batch.size() ? Batch[I].Name : std::string());
      One.set("ladder", outcomeToJson(R.Outcomes[I]));
      Degradations.push(std::move(One));
    }
  Root.set("degradations", std::move(Degradations));

  if (Cache != nullptr)
    Root.set("cache", Cache->statsToJson());
  Root.set("counters", countersToJson());
  Root.set("timers", timersToJson());
  return Root;
}
