//===- pipeline/Batch.cpp - Parallel batch-compilation driver -------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Batch.h"

#include "machine/MachineModel.h"
#include "pipeline/Report.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace pira;

PIRA_STAT(NumBatchesCompiled, "Batch compilations driven");
PIRA_STAT(NumBatchItemsCompiled, "Functions compiled via compileBatch");

BatchResult pira::compileBatch(const std::vector<BatchItem> &Batch,
                               const MachineModel &Machine,
                               const BatchOptions &Opts) {
  PIRA_TIME_SCOPE("batch/compile");
  ++NumBatchesCompiled;
  NumBatchItemsCompiled += Batch.size();

  BatchResult R;
  R.Results.resize(Batch.size());

  auto CompileOne = [&](unsigned I) {
    // Each slot is written by exactly one worker; the MachineModel and
    // the inputs are read-only. runStrategy copies the function, so the
    // item itself is never mutated.
    R.Results[I] =
        Opts.Measure
            ? runAndMeasure(Opts.Strategy, Batch[I].Input, Machine,
                            Opts.Pinter, Opts.Seed)
            : runStrategy(Opts.Strategy, Batch[I].Input, Machine,
                          Opts.Pinter);
  };

  unsigned Jobs = Opts.Jobs == 0 ? ThreadPool::defaultJobCount() : Opts.Jobs;
  Jobs = std::max(1u, Jobs);
  if (Jobs == 1 || Batch.size() <= 1) {
    // Serial reference path: no pool, same observable results.
    R.JobsUsed = 1;
    for (unsigned I = 0, E = static_cast<unsigned>(Batch.size()); I != E; ++I)
      CompileOne(I);
  } else {
    ThreadPool Pool(Jobs);
    R.JobsUsed = Pool.numWorkers();
    Pool.parallelFor(static_cast<unsigned>(Batch.size()), CompileOne);
  }

  // Deterministic merge: aggregates walk the results in input order, and
  // every aggregated field came from a computation independent of worker
  // scheduling.
  for (const PipelineResult &P : R.Results) {
    if (!P.Success)
      continue;
    ++R.Succeeded;
    R.TotalRegistersUsed = std::max(R.TotalRegistersUsed, P.RegistersUsed);
    R.TotalSpilledWebs += P.SpilledWebs;
    R.TotalSpillInstructions += P.SpillInstructions;
    R.TotalFalseDeps += P.FalseDeps;
    R.TotalStaticCycles += P.StaticCycles;
    R.TotalDynCycles += P.DynCycles;
    R.TotalDynInstructions += P.DynInstructions;
  }
  return R;
}

json::Value pira::makeBatchStatsReport(const BatchResult &R,
                                       const std::vector<BatchItem> &Batch,
                                       const std::string &Strategy,
                                       const MachineModel &Machine) {
  json::Value Root = json::Value::object();
  Root.set("schema", StatsSchemaName);
  Root.set("version", StatsSchemaVersion);
  if (!Strategy.empty())
    Root.set("strategy", Strategy);
  Root.set("machine", machineToJson(Machine));

  json::Value Functions = json::Value::array();
  for (size_t I = 0; I != R.Results.size(); ++I) {
    json::Value One = json::Value::object();
    One.set("name", I < Batch.size() ? Batch[I].Name : std::string());
    One.set("pipeline", pipelineResultToJson(R.Results[I]));
    Functions.push(std::move(One));
  }
  Root.set("functions", std::move(Functions));

  json::Value Agg = json::Value::object();
  Agg.set("items", static_cast<uint64_t>(R.Results.size()));
  Agg.set("succeeded", R.Succeeded);
  Agg.set("max_registers_used", R.TotalRegistersUsed);
  Agg.set("spilled_webs", R.TotalSpilledWebs);
  Agg.set("spill_instructions", R.TotalSpillInstructions);
  Agg.set("false_deps", R.TotalFalseDeps);
  Agg.set("static_cycles", R.TotalStaticCycles);
  Agg.set("dyn_cycles", R.TotalDynCycles);
  Agg.set("dyn_instructions", R.TotalDynInstructions);
  Root.set("batch", std::move(Agg));

  Root.set("counters", countersToJson());
  Root.set("timers", timersToJson());
  return Root;
}
