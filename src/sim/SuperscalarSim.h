//===- sim/SuperscalarSim.h - Cycle-accurate issue simulator ----*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An in-order superscalar simulator: it replays a FunctionSchedule cycle
/// by cycle on the MachineModel, enforcing every structural and timing
/// rule — issue width, per-class unit counts, operand latencies (register
/// and memory) — and executing the instruction semantics shared with the
/// sequential interpreter. It is both the measurement device for the
/// benchmarks (dynamic cycles, utilization) and an end-to-end checker:
/// any scheduler or allocator bug surfaces as a resource/latency
/// violation or as final state diverging from the interpreter's.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SIM_SUPERSCALARSIM_H
#define PIRA_SIM_SUPERSCALARSIM_H

#include "ir/Interpreter.h"
#include "ir/Opcode.h"

#include <array>
#include <cstdint>
#include <string>

namespace pira {

class Function;
class MachineModel;
struct FunctionSchedule;

/// Outcome of a simulated run.
struct SimResult {
  bool Completed = false;      ///< Reached Ret within the cycle budget.
  bool HasReturnValue = false;
  int64_t ReturnValue = 0;
  uint64_t Cycles = 0;         ///< Machine cycles consumed.
  uint64_t Instructions = 0;   ///< Instructions retired.
  uint64_t BoundaryStalls = 0; ///< Cycles lost draining latencies at
                               ///< block boundaries.
  std::string Error;           ///< First violation or abnormal stop.
  ExecState Final;             ///< Architectural state at the end.

  /// Instructions issued per functional-unit class (utilization).
  std::array<uint64_t, NumUnitKinds> UnitIssues{};

  /// Instructions per cycle over the whole run.
  double ipc() const {
    return Cycles == 0 ? 0.0
                       : static_cast<double>(Instructions) /
                             static_cast<double>(Cycles);
  }
};

/// Runs \p F under \p Sched on \p Machine starting from \p Initial.
///
/// Every block entry replays that block's cycle groups. Violations
/// (per-cycle unit/width overflow, operand read before the producer's
/// latency elapsed, memory read before an in-flight store completes)
/// abort the run with a diagnostic in SimResult::Error.
SimResult simulate(const Function &F, const FunctionSchedule &Sched,
                   const MachineModel &Machine, ExecState Initial,
                   uint64_t MaxCycles = 1u << 22);

} // namespace pira

#endif // PIRA_SIM_SUPERSCALARSIM_H
