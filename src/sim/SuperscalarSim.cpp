//===- sim/SuperscalarSim.cpp - Cycle-accurate issue simulator ------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "sim/SuperscalarSim.h"

#include "ir/Function.h"
#include "machine/MachineModel.h"
#include "sched/Schedule.h"
#include "support/Telemetry.h"

#include <map>
#include <sstream>

using namespace pira;

PIRA_STAT(NumSimCycles, "Machine cycles consumed across simulated runs");
PIRA_STAT(NumSimInstructions, "Instructions retired across simulated runs");

namespace {

/// Tracks when each register and memory slot becomes readable.
struct Scoreboard {
  std::vector<uint64_t> RegReadyAt;
  std::map<std::pair<std::string, size_t>, uint64_t> MemReadyAt;
};

} // namespace

/// Formats "block L, inst I: message".
static std::string diag(const Function &F, unsigned Block, unsigned Inst,
                        const std::string &Msg) {
  std::ostringstream OS;
  OS << "block " << F.block(Block).name() << ", inst " << Inst << ": "
     << Msg;
  return OS.str();
}

static SimResult simulateImpl(const Function &F, const FunctionSchedule &Sched,
                              const MachineModel &Machine, ExecState Initial,
                              uint64_t MaxCycles) {
  SimResult R;
  R.Final = std::move(Initial);
  ExecState &State = R.Final;
  if (State.Regs.size() < F.numRegs())
    State.Regs.resize(F.numRegs(), 0);

  if (F.numBlocks() == 0 || Sched.Blocks.size() != F.numBlocks()) {
    R.Error = "schedule does not cover the function";
    return R;
  }

  Scoreboard Board;
  Board.RegReadyAt.assign(F.numRegs(), 0);

  unsigned Block = 0;
  while (R.Cycles < MaxCycles) {
    const BasicBlock &BB = F.block(Block);
    const BlockSchedule &BS = Sched.Blocks[Block];
    if (BS.CycleOf.size() != BB.size()) {
      R.Error = diag(F, Block, 0, "schedule does not match block size");
      return R;
    }
    std::vector<std::vector<unsigned>> Groups = BS.groupsByCycle();
    // Block schedules assume every operand is ready on entry; the
    // machine stalls at the boundary until in-flight results (register
    // and memory) drain. Intra-block hazards below remain hard errors —
    // they indicate scheduler bugs, not boundary effects.
    uint64_t Base = R.Cycles;
    for (uint64_t Ready : Board.RegReadyAt)
      Base = std::max(Base, Ready);
    for (const auto &[Slot, Ready] : Board.MemReadyAt)
      Base = std::max(Base, Ready);
    R.BoundaryStalls += Base - R.Cycles;
    int NextBlock = -1;

    for (unsigned C = 0, CE = BS.Makespan; C != CE; ++C) {
      uint64_t Abs = Base + C;
      // Structural legality of the cycle.
      unsigned Width = 0;
      std::array<unsigned, NumUnitKinds> PerUnit{};
      for (unsigned I : Groups[C]) {
        ++Width;
        ++PerUnit[static_cast<unsigned>(BB.inst(I).unit())];
      }
      if (Width > Machine.issueWidth()) {
        R.Error = diag(F, Block, Groups[C].empty() ? 0 : Groups[C][0],
                       "issue width exceeded");
        return R;
      }
      for (unsigned K = 0; K != NumUnitKinds; ++K)
        if (PerUnit[K] > Machine.units(static_cast<UnitKind>(K))) {
          R.Error = diag(F, Block, Groups[C].empty() ? 0 : Groups[C][0],
                         std::string("unit overcommitted: ") +
                             unitKindName(static_cast<UnitKind>(K)));
          return R;
        }

      // Execute the group in program order (reads-before-writes across
      // anti dependences is preserved because an anti edge always points
      // from the earlier instruction to the later one).
      for (unsigned I : Groups[C]) {
        const Instruction &Inst = BB.inst(I);
        for (Reg U : Inst.uses())
          if (Board.RegReadyAt[U] > Abs) {
            R.Error =
                diag(F, Block, I, "register operand read before ready");
            return R;
          }
        std::string Array;
        size_t Slot = 0;
        bool HasAddr = Inst.isMemory() &&
                       resolveAddress(Inst, State, Array, Slot);
        if (HasAddr && Inst.opcode() == Opcode::Load) {
          auto It = Board.MemReadyAt.find({Array, Slot});
          if (It != Board.MemReadyAt.end() && It->second > Abs) {
            R.Error = diag(F, Block, I, "memory read before store ready");
            return R;
          }
        }

        ++R.Instructions;
        ++R.UnitIssues[static_cast<unsigned>(Inst.unit())];

        if (Inst.isTerminator()) {
          switch (Inst.opcode()) {
          case Opcode::Br:
            NextBlock = static_cast<int>(Inst.targets()[0]);
            break;
          case Opcode::CondBr:
            NextBlock = static_cast<int>(State.Regs[Inst.uses()[0]] != 0
                                             ? Inst.targets()[0]
                                             : Inst.targets()[1]);
            break;
          case Opcode::Ret:
            R.Completed = true;
            if (!Inst.uses().empty()) {
              R.HasReturnValue = true;
              R.ReturnValue = State.Regs[Inst.uses()[0]];
            }
            break;
          default:
            R.Error = diag(F, Block, I, "unknown terminator");
            return R;
          }
          continue;
        }

        executeInstruction(Inst, F, State);
        if (Inst.hasDef())
          Board.RegReadyAt[Inst.def()] =
              Abs + Machine.latency(Inst.opcode());
        if (HasAddr && Inst.opcode() == Opcode::Store)
          Board.MemReadyAt[{Array, Slot}] =
              Abs + Machine.latency(Opcode::Store);
      }
    }

    R.Cycles = Base + BS.Makespan;
    if (R.Completed)
      return R;
    if (NextBlock < 0) {
      R.Error = diag(F, Block, BB.size() ? BB.size() - 1 : 0,
                     "block ended without a branch decision");
      return R;
    }
    Block = static_cast<unsigned>(NextBlock);
  }
  R.Error = "cycle budget exhausted";
  return R;
}

SimResult pira::simulate(const Function &F, const FunctionSchedule &Sched,
                         const MachineModel &Machine, ExecState Initial,
                         uint64_t MaxCycles) {
  PIRA_TIME_SCOPE("sim/superscalar");
  SimResult R = simulateImpl(F, Sched, Machine, std::move(Initial), MaxCycles);
  NumSimCycles += R.Cycles;
  NumSimInstructions += R.Instructions;
  return R;
}
