//===- ir/Function.h - Basic blocks and control-flow graph ------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A function is an entry block plus a control-flow graph of basic blocks.
/// Register operands are symbolic (one register per value, an unbounded
/// supply) until an allocator rewrites them to physical numbers; the
/// NumRegs field tracks the name-space size either way.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_IR_FUNCTION_H
#define PIRA_IR_FUNCTION_H

#include "ir/Instruction.h"

#include <cassert>
#include <map>
#include <string>
#include <vector>

namespace pira {

/// A straight-line sequence of instructions ending in (at most) one
/// terminator. Successor edges live on the terminator's target list.
class BasicBlock {
public:
  BasicBlock() = default;
  explicit BasicBlock(std::string Name) : Name(std::move(Name)) {}

  /// Returns the label of this block.
  const std::string &name() const { return Name; }

  /// Sets the label.
  void setName(std::string N) { Name = std::move(N); }

  /// The instruction sequence (mutable).
  std::vector<Instruction> &instructions() { return Insts; }

  /// The instruction sequence.
  const std::vector<Instruction> &instructions() const { return Insts; }

  /// Returns the number of instructions.
  unsigned size() const { return static_cast<unsigned>(Insts.size()); }

  /// Returns true when the block holds no instructions.
  bool empty() const { return Insts.empty(); }

  /// Returns instruction \p Idx.
  const Instruction &inst(unsigned Idx) const {
    assert(Idx < Insts.size() && "instruction index out of range");
    return Insts[Idx];
  }

  /// Mutable access to instruction \p Idx.
  Instruction &inst(unsigned Idx) {
    assert(Idx < Insts.size() && "instruction index out of range");
    return Insts[Idx];
  }

  /// Appends an instruction.
  void append(Instruction I) { Insts.push_back(std::move(I)); }

  /// Returns true if the final instruction is a terminator.
  bool hasTerminator() const {
    return !Insts.empty() && Insts.back().isTerminator();
  }

  /// Returns successor block indices (empty for Ret or missing terminator).
  std::vector<unsigned> successors() const {
    if (!hasTerminator())
      return {};
    const TargetList &T = Insts.back().targets();
    return std::vector<unsigned>(T.begin(), T.end());
  }

private:
  std::string Name;
  std::vector<Instruction> Insts;
};

/// A named array backing loads and stores; sized in 64-bit elements.
struct ArrayDecl {
  std::string Name;
  unsigned Size = 0;
};

/// A function: declared arrays, a register name space, and a CFG whose
/// entry is block 0.
class Function {
public:
  Function() = default;
  explicit Function(std::string Name) : Name(std::move(Name)) {}

  /// Returns the function name.
  const std::string &name() const { return Name; }

  /// Sets the function name.
  void setName(std::string N) { Name = std::move(N); }

  /// Returns the number of registers in the name space (symbolic count
  /// before allocation; physical count after).
  unsigned numRegs() const { return NumRegs; }

  /// Widens the register name space to at least \p N registers.
  void setNumRegs(unsigned N) { NumRegs = N; }

  /// Returns a fresh register number, growing the name space.
  Reg makeReg() { return NumRegs++; }

  /// True once an allocator has rewritten operands to physical registers.
  bool isAllocated() const { return Allocated; }

  /// Marks the function as using physical registers (affects printing).
  void setAllocated(bool A) { Allocated = A; }

  /// The blocks of the CFG; block 0 is the entry.
  std::vector<BasicBlock> &blocks() { return Blocks; }

  /// The blocks of the CFG.
  const std::vector<BasicBlock> &blocks() const { return Blocks; }

  /// Returns the number of blocks.
  unsigned numBlocks() const { return static_cast<unsigned>(Blocks.size()); }

  /// Returns block \p Idx.
  const BasicBlock &block(unsigned Idx) const {
    assert(Idx < Blocks.size() && "block index out of range");
    return Blocks[Idx];
  }

  /// Mutable access to block \p Idx.
  BasicBlock &block(unsigned Idx) {
    assert(Idx < Blocks.size() && "block index out of range");
    return Blocks[Idx];
  }

  /// Appends a new block with the given label and returns its index.
  unsigned addBlock(std::string Label) {
    Blocks.emplace_back(std::move(Label));
    return numBlocks() - 1;
  }

  /// Returns the index of the block labeled \p Label, or -1 when absent.
  int findBlock(const std::string &Label) const {
    for (unsigned I = 0, E = numBlocks(); I != E; ++I)
      if (Blocks[I].name() == Label)
        return static_cast<int>(I);
    return -1;
  }

  /// Declared arrays in declaration order.
  const std::vector<ArrayDecl> &arrays() const { return Arrays; }

  /// Declares an array (or widens an existing one to \p Size).
  void declareArray(const std::string &ArrName, unsigned Size) {
    for (ArrayDecl &A : Arrays) {
      if (A.Name != ArrName)
        continue;
      if (A.Size < Size)
        A.Size = Size;
      return;
    }
    Arrays.push_back({ArrName, Size});
  }

  /// Returns the declared size of \p ArrName, or 0 when undeclared.
  unsigned arraySize(const std::string &ArrName) const {
    for (const ArrayDecl &A : Arrays)
      if (A.Name == ArrName)
        return A.Size;
    return 0;
  }

  /// Computes predecessor lists (indexed by block) from terminator targets.
  std::vector<std::vector<unsigned>> predecessors() const {
    std::vector<std::vector<unsigned>> Preds(numBlocks());
    for (unsigned B = 0, E = numBlocks(); B != E; ++B)
      for (unsigned Succ : Blocks[B].successors())
        Preds[Succ].push_back(B);
    return Preds;
  }

  /// Counts instructions over all blocks.
  unsigned totalInstructions() const {
    unsigned N = 0;
    for (const BasicBlock &B : Blocks)
      N += B.size();
    return N;
  }

private:
  std::string Name;
  unsigned NumRegs = 0;
  bool Allocated = false;
  std::vector<BasicBlock> Blocks;
  std::vector<ArrayDecl> Arrays;
};

} // namespace pira

#endif // PIRA_IR_FUNCTION_H
