//===- ir/Opcode.h - Opcode definitions and metadata ------------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The opcode set of the register-based intermediate code described in the
/// paper's machine model: a RISC where memory is touched only by loads and
/// stores, computation happens in registers, and every operation is routed
/// to one functional-unit class (fixed point, floating point, memory/fetch,
/// or branch).
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_IR_OPCODE_H
#define PIRA_IR_OPCODE_H

namespace pira {

/// Functional-unit classes of the superscalar machine model. The paper's
/// examples use a fixed-point unit, a floating-point unit, a single
/// fetching (memory) unit, and a branch unit (MIPS R3000 / IBM RS/6000
/// style).
enum class UnitKind : unsigned {
  IntALU = 0, ///< Fixed-point arithmetic and logic.
  FPU = 1,    ///< Floating-point arithmetic.
  Memory = 2, ///< Load/store ("fetching") unit.
  Branch = 3, ///< Control transfer unit.
  Move = 4,   ///< Immediate materialization / register moves. Kept apart
              ///< from IntALU because the paper's Example 1 relies on
              ///< "s2 := i" co-issuing with fixed-point arithmetic:
              ///< machines fold such moves or provide plural capacity.
};

/// Number of distinct UnitKind values.
inline constexpr unsigned NumUnitKinds = 5;

/// Returns a short printable name for \p Kind.
const char *unitKindName(UnitKind Kind);

/// Opcodes of the intermediate code.
///
/// Floating-point opcodes share integer arithmetic semantics in this
/// reproduction (registers hold 64-bit integers); they exist to route work
/// to the FPU unit class with FPU latencies, which is all the allocation /
/// scheduling framework observes.
enum class Opcode : unsigned {
  // Fixed point.
  LoadImm, ///< def = immediate constant.
  Copy,    ///< def = use0.
  Add,     ///< def = use0 + use1.
  Sub,     ///< def = use0 - use1.
  Mul,     ///< def = use0 * use1.
  Div,     ///< def = use0 / use1 (0 when use1 == 0).
  Neg,     ///< def = -use0.
  And,     ///< def = use0 & use1.
  Or,      ///< def = use0 | use1.
  Xor,     ///< def = use0 ^ use1.
  Shl,     ///< def = use0 << (use1 & 63).
  Shr,     ///< def = use0 >> (use1 & 63) (arithmetic).
  CmpEq,   ///< def = (use0 == use1) ? 1 : 0.
  CmpLt,   ///< def = (use0 < use1) ? 1 : 0.
  CmpLe,   ///< def = (use0 <= use1) ? 1 : 0.
  // Floating point (FPU-routed; integer semantics, see above).
  FAdd, ///< def = use0 + use1.
  FSub, ///< def = use0 - use1.
  FMul, ///< def = use0 * use1.
  FDiv, ///< def = use0 / use1 (0 when use1 == 0).
  FNeg, ///< def = -use0.
  FMA,  ///< def = use0 * use1 + use2 (three-register multiply-add).
  // Memory.
  Load,  ///< def = Array[use0? + imm] (index register optional).
  Store, ///< Array[use1? + imm] = use0 (index register is use1).
  // Control.
  Br,     ///< Unconditional branch to target block 0.
  CondBr, ///< Branch to target 0 when use0 != 0, else target 1.
  Ret,    ///< Return (optional use0 as the function result).
};

/// Number of distinct opcodes.
inline constexpr unsigned NumOpcodes = static_cast<unsigned>(Opcode::Ret) + 1;

/// Static metadata describing one opcode.
struct OpcodeInfo {
  const char *Name;      ///< Assembly mnemonic.
  UnitKind Unit;         ///< Functional-unit class executing the op.
  unsigned NumUses;      ///< Register operands read.
  bool HasDef;           ///< Whether the op writes a register.
  bool IsMemory;         ///< Load or store.
  bool IsTerminator;     ///< Ends a basic block.
  unsigned DefaultLatency; ///< Cycles from issue to result availability.
};

/// Returns the metadata record for \p Op.
const OpcodeInfo &opcodeInfo(Opcode Op);

/// Returns the mnemonic of \p Op (e.g. "fmul").
inline const char *opcodeName(Opcode Op) { return opcodeInfo(Op).Name; }

} // namespace pira

#endif // PIRA_IR_OPCODE_H
