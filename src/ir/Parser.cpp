//===- ir/Parser.cpp - Textual IR parser ----------------------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include "ir/Function.h"
#include "support/FaultInjection.h"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

using namespace pira;

namespace {

enum class TokKind {
  Ident,   // bare identifier / mnemonic / keyword
  Reg,     // %s4 or %r4
  Integer, // decimal integer, possibly negative
  Punct,   // single punctuation character
  End,
};

struct Token {
  TokKind Kind = TokKind::End;
  std::string Text;   // identifier spelling or punct char
  int64_t Value = 0;  // integer value / register number
  bool PhysicalReg = false;
  unsigned Line = 1;
};

/// Splits the input into tokens; '#' starts a to-end-of-line comment.
class Lexer {
public:
  explicit Lexer(std::string_view Text) : Text(Text) {}

  Token next() {
    skipSpace();
    Token T;
    T.Line = Line;
    if (Pos >= Text.size())
      return T;
    char C = Text[Pos];
    if (C == '%')
      return lexReg();
    if (std::isdigit(static_cast<unsigned char>(C)) || C == '-')
      return lexInt();
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '@')
      return lexIdent();
    ++Pos;
    T.Kind = TokKind::Punct;
    T.Text = std::string(1, C);
    return T;
  }

private:
  void skipSpace() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '#') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
        continue;
      }
      if (!std::isspace(static_cast<unsigned char>(C)))
        return;
      if (C == '\n')
        ++Line;
      ++Pos;
    }
  }

  Token lexReg() {
    Token T;
    T.Line = Line;
    ++Pos; // consume '%'
    if (Pos < Text.size() && (Text[Pos] == 's' || Text[Pos] == 'r')) {
      T.PhysicalReg = Text[Pos] == 'r';
      ++Pos;
    }
    T.Kind = TokKind::Reg;
    size_t Start = Pos;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos == Start) {
      T.Kind = TokKind::Punct; // malformed; surface as stray '%'
      T.Text = "%";
      return T;
    }
    T.Value = std::stoll(std::string(Text.substr(Start, Pos - Start)));
    return T;
  }

  Token lexInt() {
    Token T;
    T.Line = Line;
    T.Kind = TokKind::Integer;
    size_t Start = Pos;
    if (Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos == Start + (Text[Start] == '-' ? 1u : 0u)) {
      T.Kind = TokKind::Punct;
      T.Text = "-";
      return T;
    }
    T.Value = std::stoll(std::string(Text.substr(Start, Pos - Start)));
    return T;
  }

  Token lexIdent() {
    Token T;
    T.Line = Line;
    T.Kind = TokKind::Ident;
    size_t Start = Pos;
    if (Text[Pos] == '@')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '_'))
      ++Pos;
    T.Text = std::string(Text.substr(Start, Pos - Start));
    return T;
  }

  std::string_view Text;
  size_t Pos = 0;
  unsigned Line = 1;
};

/// Recursive-descent parser over the token stream.
class Parser {
public:
  Parser(std::string_view Text, Function &F, std::string &Error)
      : Lex(Text), F(F), Error(Error) {
    advance();
  }

  bool run() {
    if (!parseHeader())
      return false;
    while (Tok.Kind == TokKind::Ident && Tok.Text == "array")
      if (!parseArray())
        return false;
    while (Tok.Kind == TokKind::Ident && Tok.Text == "block")
      if (!parseBlock())
        return false;
    if (!expectPunct("}"))
      return false;
    return resolveTargets() && checkRegSpace();
  }

private:
  void advance() { Tok = Lex.next(); }

  bool fail(const std::string &Msg) {
    std::ostringstream OS;
    OS << "line " << Tok.Line << ": " << Msg;
    Error = OS.str();
    return false;
  }

  bool expectIdent(const std::string &Word) {
    if (Tok.Kind != TokKind::Ident || Tok.Text != Word)
      return fail("expected '" + Word + "'");
    advance();
    return true;
  }

  bool expectPunct(const std::string &P) {
    if (Tok.Kind != TokKind::Punct || Tok.Text != P)
      return fail("expected '" + P + "'");
    advance();
    return true;
  }

  bool parseInt(int64_t &Out) {
    if (Tok.Kind != TokKind::Integer)
      return fail("expected integer");
    Out = Tok.Value;
    advance();
    return true;
  }

  bool parseReg(Reg &Out) {
    if (Tok.Kind != TokKind::Reg)
      return fail("expected register");
    if (!SawAnyReg && !HeaderPhysical) {
      Physical = Tok.PhysicalReg;
      F.setAllocated(Physical);
    } else if (Tok.PhysicalReg != Physical) {
      return fail("mixed %s and %r registers in one function");
    }
    SawAnyReg = true;
    Out = static_cast<Reg>(Tok.Value);
    advance();
    return true;
  }

  bool parseName(std::string &Out) {
    if (Tok.Kind != TokKind::Ident)
      return fail("expected identifier");
    Out = Tok.Text;
    advance();
    return true;
  }

  bool parseHeader() {
    if (!expectIdent("func"))
      return false;
    if (Tok.Kind != TokKind::Ident || Tok.Text.empty() ||
        Tok.Text[0] != '@')
      return fail("expected @name");
    F.setName(Tok.Text.substr(1));
    advance();
    if (!expectIdent("regs"))
      return false;
    int64_t Regs = 0;
    if (!parseInt(Regs) || Regs < 0)
      return fail("bad register count");
    DeclaredRegs = static_cast<unsigned>(Regs);
    if (Tok.Kind == TokKind::Ident && Tok.Text == "physical") {
      Physical = true;
      HeaderPhysical = true;
      F.setAllocated(true);
      advance();
    }
    return expectPunct("{");
  }

  bool parseArray() {
    advance(); // 'array'
    std::string Name;
    int64_t Size = 0;
    if (!parseName(Name) || !parseInt(Size) || Size < 0)
      return false;
    F.declareArray(Name, static_cast<unsigned>(Size));
    return true;
  }

  bool parseBlock() {
    advance(); // 'block'
    std::string Label;
    if (!parseName(Label))
      return false;
    if (F.findBlock(Label) != -1)
      return fail("duplicate block label '" + Label + "'");
    if (!expectPunct(":"))
      return false;
    CurBlock = F.addBlock(Label);
    while (!atBlockEnd())
      if (!parseInstruction())
        return false;
    return true;
  }

  bool atBlockEnd() const {
    if (Tok.Kind == TokKind::End)
      return true;
    if (Tok.Kind == TokKind::Punct && Tok.Text == "}")
      return true;
    return Tok.Kind == TokKind::Ident && Tok.Text == "block";
  }

  /// Looks up an opcode by mnemonic; returns nullopt when unknown.
  static std::optional<Opcode> opcodeByName(const std::string &Name) {
    for (unsigned I = 0; I != NumOpcodes; ++I) {
      Opcode Op = static_cast<Opcode>(I);
      if (Name == opcodeName(Op))
        return Op;
    }
    return std::nullopt;
  }

  bool parseInstruction() {
    Reg Def = NoReg;
    if (Tok.Kind == TokKind::Reg) {
      if (!parseReg(Def) || !expectPunct("="))
        return false;
    }
    std::string Mnemonic;
    if (!parseName(Mnemonic))
      return false;
    std::optional<Opcode> Op = opcodeByName(Mnemonic);
    if (!Op)
      return fail("unknown opcode '" + Mnemonic + "'");
    const OpcodeInfo &Info = opcodeInfo(*Op);
    if (Info.HasDef != (Def != NoReg))
      return fail(std::string("opcode '") + Mnemonic +
                  (Info.HasDef ? "' requires a result register"
                               : "' takes no result register"));

    switch (*Op) {
    case Opcode::LoadImm:
      return parseLoadImm(Def);
    case Opcode::Load:
      return parseLoad(Def);
    case Opcode::Store:
      return parseStore();
    case Opcode::Br:
      return parseBr();
    case Opcode::CondBr:
      return parseCondBr();
    case Opcode::Ret:
      return parseRet();
    default:
      return parseRegOperands(*Op, Def, Info.NumUses);
    }
  }

  void emit(Instruction I, std::vector<std::string> TargetLabels = {}) {
    F.block(CurBlock).append(std::move(I));
    if (!TargetLabels.empty())
      PendingTargets.push_back(
          {CurBlock, F.block(CurBlock).size() - 1, std::move(TargetLabels)});
  }

  bool parseLoadImm(Reg Def) {
    int64_t Imm = 0;
    if (!parseInt(Imm))
      return false;
    emit(Instruction(Opcode::LoadImm, Def, {}, Imm));
    return true;
  }

  /// Parses `name[%i + 4]`, `name[%i]`, or `name[4]` into its parts.
  bool parseAddress(std::string &Array, Reg &Index, int64_t &Offset) {
    Index = NoReg;
    Offset = 0;
    if (!parseName(Array) || !expectPunct("["))
      return false;
    if (Tok.Kind == TokKind::Reg) {
      if (!parseReg(Index))
        return false;
      if (Tok.Kind == TokKind::Punct && Tok.Text == "+") {
        advance();
        if (!parseInt(Offset))
          return false;
      }
    } else if (!parseInt(Offset)) {
      return false;
    }
    return expectPunct("]");
  }

  bool parseLoad(Reg Def) {
    std::string Array;
    Reg Index = NoReg;
    int64_t Offset = 0;
    if (!parseAddress(Array, Index, Offset))
      return false;
    Instruction I(Opcode::Load, Def,
                  Index == NoReg ? std::vector<Reg>{}
                                 : std::vector<Reg>{Index},
                  Offset);
    I.setArraySymbol(Array);
    F.declareArray(Array, 0);
    emit(std::move(I));
    return true;
  }

  bool parseStore() {
    std::string Array;
    Reg Index = NoReg;
    int64_t Offset = 0;
    if (!parseAddress(Array, Index, Offset) || !expectPunct(","))
      return false;
    Reg Value = NoReg;
    if (!parseReg(Value))
      return false;
    Instruction I(Opcode::Store, NoReg,
                  Index == NoReg ? std::vector<Reg>{Value}
                                 : std::vector<Reg>{Value, Index},
                  Offset);
    I.setArraySymbol(Array);
    F.declareArray(Array, 0);
    emit(std::move(I));
    return true;
  }

  bool parseBr() {
    std::string Label;
    if (!parseName(Label))
      return false;
    Instruction I(Opcode::Br, NoReg, {});
    emit(std::move(I), {Label});
    return true;
  }

  bool parseCondBr() {
    Reg Cond = NoReg;
    std::string TrueLabel, FalseLabel;
    if (!parseReg(Cond) || !expectPunct(",") || !parseName(TrueLabel) ||
        !expectPunct(",") || !parseName(FalseLabel))
      return false;
    Instruction I(Opcode::CondBr, NoReg, {Cond});
    emit(std::move(I), {TrueLabel, FalseLabel});
    return true;
  }

  bool parseRet() {
    std::vector<Reg> Uses;
    if (Tok.Kind == TokKind::Reg) {
      Reg R = NoReg;
      if (!parseReg(R))
        return false;
      Uses.push_back(R);
    }
    emit(Instruction(Opcode::Ret, NoReg, std::move(Uses)));
    return true;
  }

  bool parseRegOperands(Opcode Op, Reg Def, unsigned Count) {
    std::vector<Reg> Uses;
    for (unsigned I = 0; I != Count; ++I) {
      if (I != 0 && !expectPunct(","))
        return false;
      Reg R = NoReg;
      if (!parseReg(R))
        return false;
      Uses.push_back(R);
    }
    emit(Instruction(Op, Def, std::move(Uses)));
    return true;
  }

  bool resolveTargets() {
    for (const PendingTarget &P : PendingTargets) {
      std::vector<unsigned> Resolved;
      for (const std::string &Label : P.Labels) {
        int Idx = F.findBlock(Label);
        if (Idx == -1) {
          Error = "undefined block label '" + Label + "'";
          return false;
        }
        Resolved.push_back(static_cast<unsigned>(Idx));
      }
      F.block(P.Block).inst(P.Inst).setTargets(std::move(Resolved));
    }
    return true;
  }

  /// Widens the declared register space to cover every operand actually
  /// used, then validates the declaration.
  bool checkRegSpace() {
    unsigned MaxSeen = 0;
    for (const BasicBlock &B : F.blocks())
      for (const Instruction &I : B.instructions()) {
        if (I.hasDef())
          MaxSeen = std::max(MaxSeen, I.def() + 1);
        for (Reg U : I.uses())
          MaxSeen = std::max(MaxSeen, U + 1);
      }
    if (DeclaredRegs < MaxSeen) {
      Error = "declared register count " + std::to_string(DeclaredRegs) +
              " is smaller than highest register used (" +
              std::to_string(MaxSeen) + ")";
      return false;
    }
    F.setNumRegs(DeclaredRegs);
    return true;
  }

  struct PendingTarget {
    unsigned Block;
    unsigned Inst;
    std::vector<std::string> Labels;
  };

  Lexer Lex;
  Function &F;
  std::string &Error;
  Token Tok;
  unsigned CurBlock = 0;
  unsigned DeclaredRegs = 0;
  bool Physical = false;
  bool HeaderPhysical = false;
  bool SawAnyReg = false;
  std::vector<PendingTarget> PendingTargets;
};

} // namespace

bool pira::parseFunction(std::string_view Text, Function &F,
                         std::string &Error) {
  F = Function();
  Error.clear();
  Parser P(Text, F, Error);
  return P.run();
}

Expected<Function> pira::parseFunctionEx(std::string_view Text,
                                         std::string_view Name) {
  std::string Frame =
      "input " + (Name.empty() ? std::string("<input>") : std::string(Name));
  if (faultinject::shouldFire("parse.enter")) {
    Status S = Status::error(ErrorCode::FaultInjected, "parse",
                             "injected parse failure");
    S.addContext(std::move(Frame));
    return S;
  }
  Function F;
  std::string Error;
  if (!parseFunction(Text, F, Error)) {
    Status S = Status::error(ErrorCode::ParseError, "parse", Error);
    S.addContext(std::move(Frame));
    return S;
  }
  return F;
}
