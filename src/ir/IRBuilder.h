//===- ir/IRBuilder.h - Convenience construction API ------------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A builder that appends instructions to a chosen block of a Function,
/// allocating fresh symbolic registers for results. All workload kernels,
/// examples, and most tests construct programs through this interface.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_IR_IRBUILDER_H
#define PIRA_IR_IRBUILDER_H

#include "ir/Function.h"

#include <cassert>
#include <string>
#include <vector>

namespace pira {

/// Appends instructions to a Function block by block. Value-producing
/// helpers return the fresh symbolic register holding the result.
class IRBuilder {
public:
  /// Builds into \p F. The function starts with no blocks; call startBlock.
  explicit IRBuilder(Function &F) : F(F) {}

  /// Creates a new block named \p Label, makes it current, returns its
  /// index.
  unsigned startBlock(const std::string &Label) {
    Cur = F.addBlock(Label);
    return Cur;
  }

  /// Switches the insertion point to existing block \p Idx.
  void setBlock(unsigned Idx) {
    assert(Idx < F.numBlocks() && "no such block");
    Cur = Idx;
  }

  /// Returns the current insertion block index.
  unsigned currentBlock() const { return Cur; }

  /// Emits `def = li Imm`.
  Reg loadImm(int64_t Imm) {
    Reg D = F.makeReg();
    append(Instruction(Opcode::LoadImm, D, {}, Imm));
    return D;
  }

  /// Emits `def = copy Src`.
  Reg copy(Reg Src) {
    Reg D = F.makeReg();
    append(Instruction(Opcode::Copy, D, {Src}));
    return D;
  }

  /// Emits a two-operand arithmetic instruction and returns its result.
  Reg binary(Opcode Op, Reg A, Reg B) {
    assert(opcodeInfo(Op).NumUses == 2 && opcodeInfo(Op).HasDef &&
           "not a binary value opcode");
    Reg D = F.makeReg();
    append(Instruction(Op, D, {A, B}));
    return D;
  }

  /// Emits a one-operand arithmetic instruction and returns its result.
  Reg unary(Opcode Op, Reg A) {
    assert(opcodeInfo(Op).NumUses == 1 && opcodeInfo(Op).HasDef &&
           "not a unary value opcode");
    Reg D = F.makeReg();
    append(Instruction(Op, D, {A}));
    return D;
  }

  /// Emits `def = fma A, B, C` (A * B + C).
  Reg fma(Reg A, Reg B, Reg C) {
    Reg D = F.makeReg();
    append(Instruction(Opcode::FMA, D, {A, B, C}));
    return D;
  }

  /// Emits a binary op that redefines an existing register (`Dst = Op A,
  /// B`). This is the paper's sanctioned deviation from one-register-per-
  /// value: loop-carried updates such as induction-variable increments
  /// reuse their register, ideally within the very instruction that last
  /// reads the old value.
  void binaryInto(Reg Dst, Opcode Op, Reg A, Reg B) {
    assert(opcodeInfo(Op).NumUses == 2 && opcodeInfo(Op).HasDef &&
           "not a binary value opcode");
    append(Instruction(Op, Dst, {A, B}));
  }

  /// Emits `Dst = li Imm` into an existing register.
  void loadImmInto(Reg Dst, int64_t Imm) {
    append(Instruction(Opcode::LoadImm, Dst, {}, Imm));
  }

  /// Emits `Dst = copy Src` into an existing register.
  void copyInto(Reg Dst, Reg Src) {
    append(Instruction(Opcode::Copy, Dst, {Src}));
  }

  /// Emits `def = load Array[Index + Offset]`; pass NoReg for a direct
  /// (scalar) address. Declares the array when previously unseen.
  Reg load(const std::string &Array, Reg Index = NoReg, int64_t Offset = 0) {
    Reg D = F.makeReg();
    Instruction I(Opcode::Load, D,
                  Index == NoReg ? std::vector<Reg>{}
                                 : std::vector<Reg>{Index},
                  Offset);
    I.setArraySymbol(Array);
    F.declareArray(Array, defaultArraySize);
    append(std::move(I));
    return D;
  }

  /// Emits `store Array[Index + Offset], Value`.
  void store(const std::string &Array, Reg Value, Reg Index = NoReg,
             int64_t Offset = 0) {
    Instruction I(Opcode::Store, NoReg,
                  Index == NoReg ? std::vector<Reg>{Value}
                                 : std::vector<Reg>{Value, Index},
                  Offset);
    I.setArraySymbol(Array);
    F.declareArray(Array, defaultArraySize);
    append(std::move(I));
  }

  /// Emits `br Target`.
  void br(unsigned Target) {
    Instruction I(Opcode::Br, NoReg, {});
    I.setTargets({Target});
    append(std::move(I));
  }

  /// Emits `cbr Cond, TrueTarget, FalseTarget`.
  void condBr(Reg Cond, unsigned TrueTarget, unsigned FalseTarget) {
    Instruction I(Opcode::CondBr, NoReg, {Cond});
    I.setTargets({TrueTarget, FalseTarget});
    append(std::move(I));
  }

  /// Emits `ret Value` (or a value-less return with NoReg).
  void ret(Reg Value = NoReg) {
    Instruction I(Opcode::Ret, NoReg,
                  Value == NoReg ? std::vector<Reg>{}
                                 : std::vector<Reg>{Value});
    append(std::move(I));
  }

  /// Default element count given to arrays first referenced through the
  /// builder; callers can re-declare for a specific size.
  static constexpr unsigned defaultArraySize = 64;

private:
  void append(Instruction I) {
    assert(Cur != ~0u && "no current block; call startBlock first");
    assert(!F.block(Cur).hasTerminator() &&
           "appending past a block terminator");
    F.block(Cur).append(std::move(I));
  }

  Function &F;
  unsigned Cur = ~0u;
};

} // namespace pira

#endif // PIRA_IR_IRBUILDER_H
