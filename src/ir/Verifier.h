//===- ir/Verifier.h - Structural IR validation -----------------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural well-formedness checks run by tests and pipeline entry
/// points: register numbers inside the declared space, terminators only
/// and always at block ends, valid branch targets, declared arrays, and
/// in-bounds constant addresses.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_IR_VERIFIER_H
#define PIRA_IR_VERIFIER_H

#include "support/Status.h"

#include <string>

namespace pira {

class Function;

/// Checks \p F for structural validity.
///
/// \returns true when well-formed; otherwise false with a diagnostic in
/// \p Error describing the first violation found.
bool verifyFunction(const Function &F, std::string &Error);

/// Structured-diagnostic front end to verifyFunction: failures come back
/// as a VerifyError Status whose context names the offending function.
Status verifyFunctionStatus(const Function &F);

} // namespace pira

#endif // PIRA_IR_VERIFIER_H
