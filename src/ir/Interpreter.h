//===- ir/Interpreter.h - Sequential reference executor ---------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a function sequentially, one instruction at a time, in program
/// order. This is the semantic ground truth: every allocation and
/// scheduling transformation must leave a program whose execution (arrays
/// and return value) matches the interpreter's result on the original
/// symbolic-register code. The superscalar simulator cross-checks against
/// this.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_IR_INTERPRETER_H
#define PIRA_IR_INTERPRETER_H

#include "ir/Instruction.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pira {

class Function;

/// Architectural state: register file plus named array memory.
struct ExecState {
  std::vector<int64_t> Regs;
  std::map<std::string, std::vector<int64_t>> Arrays;
};

/// Outcome of an interpretation run.
struct ExecResult {
  bool Completed = false;      ///< Reached Ret within the step budget.
  bool HasReturnValue = false; ///< Ret carried a register.
  int64_t ReturnValue = 0;
  uint64_t Steps = 0;          ///< Instructions executed.
  std::string Error;           ///< Non-empty on abnormal stop.
  ExecState Final;             ///< State at the stopping point.
};

/// Builds an initial state for \p F: registers zeroed, every declared
/// array filled with deterministic pseudo-random values from \p Seed.
ExecState makeInitialState(const Function &F, uint64_t Seed);

/// Runs \p F from block 0 on \p Initial for at most \p MaxSteps executed
/// instructions. Addresses wrap modulo the array size so that execution is
/// total (documented behaviour relied on by randomized property tests);
/// division by zero yields zero.
ExecResult interpret(const Function &F, ExecState Initial,
                     uint64_t MaxSteps = 1u << 20);

/// Applies \p I's semantics to \p State (non-control opcodes only).
/// Exposed so the cycle-accurate simulator shares one semantics
/// definition with the interpreter.
void executeInstruction(const Instruction &I, const Function &F,
                        ExecState &State);

/// Resolves the address of memory instruction \p I under the wrap-modulo
/// semantics, using \p State for the index register. \returns false when
/// the addressed array is absent or empty; otherwise fills \p Array and
/// \p Slot. Shared by the interpreter and the superscalar simulator so
/// both agree on addressing.
bool resolveAddress(const Instruction &I, const ExecState &State,
                    std::string &Array, size_t &Slot);

/// Returns true when two states agree on every array. Register files are
/// deliberately ignored: allocation renames registers, so only memory and
/// the returned value are observable outputs of a function.
bool statesEquivalent(const ExecState &A, const ExecState &B);

} // namespace pira

#endif // PIRA_IR_INTERPRETER_H
