//===- ir/Instruction.h - Register-based IR instruction ---------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One three-address instruction over symbolic or physical registers. The
/// same representation is used before allocation (symbolic registers, one
/// per value) and after (physical registers), matching the paper's setup in
/// which allocation is a renaming of register operands.
///
/// The layout is data-oriented: operand lists use inline small-vector
/// storage (no instruction in the shipped workloads exceeds three uses or
/// two branch targets, so the common case never touches the heap) and the
/// array name of a memory operand is an interned Symbol — one word, pointer
/// comparison for equality. A block's instruction vector is therefore one
/// flat contiguous buffer, which is what the per-block dependence and
/// closure passes iterate over.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_IR_INSTRUCTION_H
#define PIRA_IR_INSTRUCTION_H

#include "ir/Opcode.h"
#include "support/SmallVector.h"
#include "support/StringInterner.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace pira {

/// Register number. Whether it denotes a symbolic or a physical register is
/// a property of the enclosing Function.
using Reg = unsigned;

/// Sentinel meaning "no register".
inline constexpr Reg NoReg = ~0u;

/// Inline-capacity operand list: covers every opcode's maximum use count.
using UseList = SmallVector<Reg, 3>;

/// Inline-capacity branch-target list: covers conditional branches.
using TargetList = SmallVector<unsigned, 2>;

/// One IR instruction.
///
/// Memory operands address a named array with an optional index register
/// plus a constant offset: `load %d, A[%i + 4]`. A branch stores its target
/// block indices in Targets.
class Instruction {
public:
  Instruction() = default;

  /// Builds an instruction from parts; prefer the IRBuilder helpers.
  Instruction(Opcode Op, Reg Def, UseList Uses, int64_t Imm = 0)
      : Op(Op), Def(Def), Uses(std::move(Uses)), Imm(Imm) {}

  /// Returns the opcode.
  Opcode opcode() const { return Op; }

  /// Returns static metadata for the opcode.
  const OpcodeInfo &info() const { return opcodeInfo(Op); }

  /// Returns the defined register, or NoReg when the opcode defines none.
  Reg def() const { return Def; }

  /// Replaces the defined register.
  void setDef(Reg R) {
    assert(info().HasDef && "opcode has no def");
    Def = R;
  }

  /// Returns the register operands read by the instruction. For Load this
  /// is the optional index register; for Store, the stored value first and
  /// then the optional index register.
  const UseList &uses() const { return Uses; }

  /// Replaces use operand \p Idx.
  void setUse(unsigned Idx, Reg R) {
    assert(Idx < Uses.size() && "use index out of range");
    Uses[Idx] = R;
  }

  /// Returns the immediate (constant for LoadImm, address offset for
  /// memory ops, zero otherwise).
  int64_t imm() const { return Imm; }

  /// Sets the immediate.
  void setImm(int64_t V) { Imm = V; }

  /// Returns the addressed array name (memory ops only).
  const std::string &arraySymbol() const {
    assert(info().IsMemory && "not a memory instruction");
    return *Array;
  }

  /// Returns the interned array name for pointer-equality comparison.
  /// Equal symbols are the same pointer.
  Symbol arraySymbolId() const {
    assert(info().IsMemory && "not a memory instruction");
    return Array;
  }

  /// Sets the addressed array name (interned).
  void setArraySymbol(const std::string &Name) { Array = internString(Name); }

  /// Returns branch target block indices (terminators only).
  const TargetList &targets() const { return Targets; }

  /// Sets branch target block indices.
  void setTargets(TargetList Blocks) { Targets = std::move(Blocks); }

  /// Retargets branch target \p Idx to block \p NewBlock.
  void setTarget(unsigned Idx, unsigned NewBlock) {
    assert(Idx < Targets.size() && "target index out of range");
    Targets[Idx] = NewBlock;
  }

  /// Returns true if this instruction ends a basic block.
  bool isTerminator() const { return info().IsTerminator; }

  /// Returns true for loads and stores.
  bool isMemory() const { return info().IsMemory; }

  /// Returns true if the instruction writes a register.
  bool hasDef() const { return info().HasDef; }

  /// Returns the functional-unit class executing this instruction.
  UnitKind unit() const { return info().Unit; }

private:
  Opcode Op = Opcode::Ret;
  Reg Def = NoReg;
  UseList Uses;
  int64_t Imm = 0;
  Symbol Array = emptySymbol();
  TargetList Targets;
};

} // namespace pira

#endif // PIRA_IR_INSTRUCTION_H
