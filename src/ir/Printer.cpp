//===- ir/Printer.cpp - Textual IR emission -------------------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include "ir/Function.h"

#include <cassert>
#include <sstream>

using namespace pira;

static std::string regName(Reg R, bool Physical) {
  assert(R != NoReg && "printing the null register");
  return (Physical ? "%r" : "%s") + std::to_string(R);
}

static std::string targetName(const Function *F, unsigned Block) {
  // Tolerate out-of-range targets: this printer also renders invalid IR
  // inside verifier diagnostics.
  if (F == nullptr || Block >= F->numBlocks())
    return "bb" + std::to_string(Block);
  return F->block(Block).name();
}

/// Formats the `A[%i + 4]` address form; omits a zero offset and a missing
/// index register.
static void printAddress(std::ostringstream &OS, const Instruction &I,
                         Reg Index, bool Physical) {
  OS << I.arraySymbol() << '[';
  if (Index != NoReg) {
    OS << regName(Index, Physical);
    if (I.imm() != 0)
      OS << " + " << I.imm();
  } else {
    OS << I.imm();
  }
  OS << ']';
}

std::string pira::formatInstruction(const Instruction &I, bool Physical,
                                    const Function *F) {
  std::ostringstream OS;
  if (I.hasDef())
    OS << regName(I.def(), Physical) << " = ";
  OS << opcodeName(I.opcode());

  switch (I.opcode()) {
  case Opcode::LoadImm:
    OS << ' ' << I.imm();
    break;
  case Opcode::Load: {
    Reg Index = I.uses().empty() ? NoReg : I.uses()[0];
    OS << ' ';
    printAddress(OS, I, Index, Physical);
    break;
  }
  case Opcode::Store: {
    Reg Index = I.uses().size() > 1 ? I.uses()[1] : NoReg;
    OS << ' ';
    printAddress(OS, I, Index, Physical);
    OS << ", " << regName(I.uses()[0], Physical);
    break;
  }
  case Opcode::Br:
    OS << ' ' << targetName(F, I.targets()[0]);
    break;
  case Opcode::CondBr:
    OS << ' ' << regName(I.uses()[0], Physical) << ", "
       << targetName(F, I.targets()[0]) << ", "
       << targetName(F, I.targets()[1]);
    break;
  case Opcode::Ret:
    if (!I.uses().empty())
      OS << ' ' << regName(I.uses()[0], Physical);
    break;
  default: {
    // Plain register-operand opcodes.
    const char *Sep = " ";
    for (Reg U : I.uses()) {
      OS << Sep << regName(U, Physical);
      Sep = ", ";
    }
    break;
  }
  }
  return OS.str();
}

void pira::printFunction(const Function &F, std::ostream &OS) {
  OS << "func @" << F.name() << " regs " << F.numRegs()
     << (F.isAllocated() ? " physical" : "") << " {\n";
  for (const ArrayDecl &A : F.arrays())
    OS << "  array " << A.Name << ' ' << A.Size << '\n';
  for (unsigned B = 0, E = F.numBlocks(); B != E; ++B) {
    OS << "block " << F.block(B).name() << ":\n";
    for (const Instruction &I : F.block(B).instructions())
      OS << "  " << formatInstruction(I, F.isAllocated(), &F) << '\n';
  }
  OS << "}\n";
}

std::string pira::functionToString(const Function &F) {
  std::ostringstream OS;
  printFunction(F, OS);
  return OS.str();
}
