//===- ir/Opcode.cpp - Opcode metadata table ------------------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "ir/Opcode.h"

#include <cassert>

using namespace pira;

const char *pira::unitKindName(UnitKind Kind) {
  switch (Kind) {
  case UnitKind::IntALU:
    return "fixed";
  case UnitKind::FPU:
    return "float";
  case UnitKind::Memory:
    return "mem";
  case UnitKind::Branch:
    return "branch";
  case UnitKind::Move:
    return "move";
  }
  assert(false && "unknown unit kind");
  return "?";
}

static const OpcodeInfo Table[NumOpcodes] = {
    // Name, Unit, NumUses, HasDef, IsMemory, IsTerminator, DefaultLatency
    {"li", UnitKind::Move, 0, true, false, false, 1},       // LoadImm
    {"copy", UnitKind::Move, 1, true, false, false, 1},     // Copy
    {"add", UnitKind::IntALU, 2, true, false, false, 1},    // Add
    {"sub", UnitKind::IntALU, 2, true, false, false, 1},    // Sub
    {"mul", UnitKind::IntALU, 2, true, false, false, 2},    // Mul
    {"div", UnitKind::IntALU, 2, true, false, false, 8},    // Div
    {"neg", UnitKind::IntALU, 1, true, false, false, 1},    // Neg
    {"and", UnitKind::IntALU, 2, true, false, false, 1},    // And
    {"or", UnitKind::IntALU, 2, true, false, false, 1},     // Or
    {"xor", UnitKind::IntALU, 2, true, false, false, 1},    // Xor
    {"shl", UnitKind::IntALU, 2, true, false, false, 1},    // Shl
    {"shr", UnitKind::IntALU, 2, true, false, false, 1},    // Shr
    {"cmpeq", UnitKind::IntALU, 2, true, false, false, 1},  // CmpEq
    {"cmplt", UnitKind::IntALU, 2, true, false, false, 1},  // CmpLt
    {"cmple", UnitKind::IntALU, 2, true, false, false, 1},  // CmpLe
    {"fadd", UnitKind::FPU, 2, true, false, false, 2},      // FAdd
    {"fsub", UnitKind::FPU, 2, true, false, false, 2},      // FSub
    {"fmul", UnitKind::FPU, 2, true, false, false, 3},      // FMul
    {"fdiv", UnitKind::FPU, 2, true, false, false, 12},     // FDiv
    {"fneg", UnitKind::FPU, 1, true, false, false, 1},      // FNeg
    {"fma", UnitKind::FPU, 3, true, false, false, 3},       // FMA
    {"load", UnitKind::Memory, 1, true, true, false, 2},    // Load
    {"store", UnitKind::Memory, 2, false, true, false, 1},  // Store
    {"br", UnitKind::Branch, 0, false, false, true, 1},     // Br
    {"cbr", UnitKind::Branch, 1, false, false, true, 1},    // CondBr
    {"ret", UnitKind::Branch, 1, false, false, true, 1},    // Ret
};

const OpcodeInfo &pira::opcodeInfo(Opcode Op) {
  unsigned Idx = static_cast<unsigned>(Op);
  assert(Idx < NumOpcodes && "opcode out of range");
  return Table[Idx];
}
