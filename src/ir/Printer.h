//===- ir/Printer.h - Textual IR emission -----------------------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints functions and instructions in the textual IR syntax accepted by
/// the Parser (round-trippable). Symbolic registers print as %sN and
/// physical registers as %rN, mirroring the paper's `si` / `ri` notation.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_IR_PRINTER_H
#define PIRA_IR_PRINTER_H

#include <ostream>
#include <string>

namespace pira {

class Function;
class Instruction;

/// Renders one instruction (no trailing newline). \p Physical selects the
/// register spelling; \p F provides block labels for branch targets and may
/// be null when the instruction has no targets.
std::string formatInstruction(const Instruction &I, bool Physical,
                              const Function *F);

/// Prints \p F in full textual syntax to \p OS.
void printFunction(const Function &F, std::ostream &OS);

/// Returns printFunction output as a string.
std::string functionToString(const Function &F);

} // namespace pira

#endif // PIRA_IR_PRINTER_H
