//===- ir/Interpreter.cpp - Sequential reference executor -----------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"

#include "ir/Function.h"
#include "support/Rng.h"

#include <cassert>

using namespace pira;

ExecState pira::makeInitialState(const Function &F, uint64_t Seed) {
  ExecState State;
  State.Regs.assign(F.numRegs(), 0);
  Rng R(Seed);
  for (const ArrayDecl &A : F.arrays()) {
    std::vector<int64_t> Data(A.Size);
    for (int64_t &V : Data)
      V = R.nextInRange(-1000, 1000);
    State.Arrays[A.Name] = std::move(Data);
  }
  return State;
}

bool pira::resolveAddress(const Instruction &I, const ExecState &State,
                          std::string &Array, size_t &Slot) {
  assert(I.isMemory() && "not a memory instruction");
  auto It = State.Arrays.find(I.arraySymbol());
  if (It == State.Arrays.end() || It->second.empty())
    return false;
  Reg Index = NoReg;
  if (I.opcode() == Opcode::Load)
    Index = I.uses().empty() ? NoReg : I.uses()[0];
  else
    Index = I.uses().size() > 1 ? I.uses()[1] : NoReg;
  int64_t Addr = I.imm();
  if (Index != NoReg)
    Addr += State.Regs[Index];
  int64_t Size = static_cast<int64_t>(It->second.size());
  Addr %= Size;
  if (Addr < 0)
    Addr += Size;
  Array = I.arraySymbol();
  Slot = static_cast<size_t>(Addr);
  return true;
}

/// Resolves a memory operand to an element slot, wrapping modulo the array
/// size so execution is total.
static int64_t *addressSlot(const Instruction &I, ExecState &State) {
  std::string Array;
  size_t Slot = 0;
  if (!resolveAddress(I, State, Array, Slot))
    return nullptr;
  return &State.Arrays[Array][Slot];
}

void pira::executeInstruction(const Instruction &I, const Function &F,
                              ExecState &State) {
  (void)F;
  auto U = [&](unsigned Idx) -> int64_t {
    assert(Idx < I.uses().size() && "operand index out of range");
    return State.Regs[I.uses()[Idx]];
  };
  auto SetDef = [&](int64_t V) { State.Regs[I.def()] = V; };

  switch (I.opcode()) {
  case Opcode::LoadImm:
    SetDef(I.imm());
    break;
  case Opcode::Copy:
    SetDef(U(0));
    break;
  case Opcode::Add:
  case Opcode::FAdd:
    SetDef(U(0) + U(1));
    break;
  case Opcode::Sub:
  case Opcode::FSub:
    SetDef(U(0) - U(1));
    break;
  case Opcode::Mul:
  case Opcode::FMul:
    SetDef(U(0) * U(1));
    break;
  case Opcode::Div:
  case Opcode::FDiv:
    SetDef(U(1) == 0 ? 0 : U(0) / U(1));
    break;
  case Opcode::Neg:
  case Opcode::FNeg:
    SetDef(-U(0));
    break;
  case Opcode::And:
    SetDef(U(0) & U(1));
    break;
  case Opcode::Or:
    SetDef(U(0) | U(1));
    break;
  case Opcode::Xor:
    SetDef(U(0) ^ U(1));
    break;
  case Opcode::Shl:
    SetDef(U(0) << (U(1) & 63));
    break;
  case Opcode::Shr:
    SetDef(U(0) >> (U(1) & 63));
    break;
  case Opcode::CmpEq:
    SetDef(U(0) == U(1) ? 1 : 0);
    break;
  case Opcode::CmpLt:
    SetDef(U(0) < U(1) ? 1 : 0);
    break;
  case Opcode::CmpLe:
    SetDef(U(0) <= U(1) ? 1 : 0);
    break;
  case Opcode::FMA:
    SetDef(U(0) * U(1) + U(2));
    break;
  case Opcode::Load: {
    int64_t *Slot = addressSlot(I, State);
    SetDef(Slot != nullptr ? *Slot : 0);
    break;
  }
  case Opcode::Store: {
    if (int64_t *Slot = addressSlot(I, State))
      *Slot = U(0);
    break;
  }
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Ret:
    assert(false && "control opcodes are handled by the interpreter loop");
    break;
  }
}

ExecResult pira::interpret(const Function &F, ExecState Initial,
                           uint64_t MaxSteps) {
  ExecResult Result;
  Result.Final = std::move(Initial);
  ExecState &State = Result.Final;
  if (State.Regs.size() < F.numRegs())
    State.Regs.resize(F.numRegs(), 0);

  if (F.numBlocks() == 0) {
    Result.Error = "function has no blocks";
    return Result;
  }

  unsigned Block = 0;
  unsigned Idx = 0;
  while (Result.Steps < MaxSteps) {
    const BasicBlock &BB = F.block(Block);
    if (Idx >= BB.size()) {
      Result.Error = "fell off the end of block " + BB.name();
      return Result;
    }
    const Instruction &I = BB.inst(Idx);
    ++Result.Steps;

    if (!I.isTerminator()) {
      executeInstruction(I, F, State);
      ++Idx;
      continue;
    }
    switch (I.opcode()) {
    case Opcode::Br:
      Block = I.targets()[0];
      Idx = 0;
      break;
    case Opcode::CondBr:
      Block = State.Regs[I.uses()[0]] != 0 ? I.targets()[0] : I.targets()[1];
      Idx = 0;
      break;
    case Opcode::Ret:
      Result.Completed = true;
      if (!I.uses().empty()) {
        Result.HasReturnValue = true;
        Result.ReturnValue = State.Regs[I.uses()[0]];
      }
      return Result;
    default:
      assert(false && "unknown terminator");
      return Result;
    }
  }
  Result.Error = "step budget exhausted";
  return Result;
}

bool pira::statesEquivalent(const ExecState &A, const ExecState &B) {
  return A.Arrays == B.Arrays;
}
