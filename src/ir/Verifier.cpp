//===- ir/Verifier.cpp - Structural IR validation -------------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/Function.h"
#include "ir/Printer.h"

#include <sstream>

using namespace pira;

namespace {

/// Accumulates context for error messages.
class Checker {
public:
  Checker(const Function &F, std::string &Error) : F(F), Error(Error) {}

  bool run() {
    if (F.numBlocks() == 0)
      return fail(0, 0, "function has no blocks");
    for (unsigned B = 0, E = F.numBlocks(); B != E; ++B)
      if (!checkBlock(B))
        return false;
    return true;
  }

private:
  bool fail(unsigned Block, unsigned Inst, const std::string &Msg) {
    std::ostringstream OS;
    OS << "function @" << F.name();
    if (Block < F.numBlocks()) {
      OS << ", block " << F.block(Block).name();
      if (Inst < F.block(Block).size())
        OS << ", inst " << Inst << " ("
           << formatInstruction(F.block(Block).inst(Inst), F.isAllocated(),
                                &F)
           << ")";
    }
    OS << ": " << Msg;
    Error = OS.str();
    return false;
  }

  bool checkReg(unsigned B, unsigned I, Reg R) {
    if (R < F.numRegs())
      return true;
    return fail(B, I,
                "register " + std::to_string(R) +
                    " outside declared space of " +
                    std::to_string(F.numRegs()));
  }

  bool checkBlock(unsigned B) {
    const BasicBlock &BB = F.block(B);
    if (BB.empty())
      return fail(B, 0, "empty block");
    if (!BB.hasTerminator())
      return fail(B, BB.size() - 1, "block does not end in a terminator");
    for (unsigned I = 0, E = BB.size(); I != E; ++I)
      if (!checkInst(B, I))
        return false;
    return true;
  }

  bool checkInst(unsigned B, unsigned I) {
    const Instruction &Inst = F.block(B).inst(I);
    const OpcodeInfo &Info = Inst.info();

    if (Inst.isTerminator() && I + 1 != F.block(B).size())
      return fail(B, I, "terminator in the middle of a block");

    if (Info.HasDef) {
      if (Inst.def() == NoReg)
        return fail(B, I, "missing result register");
      if (!checkReg(B, I, Inst.def()))
        return false;
    } else if (Inst.def() != NoReg) {
      return fail(B, I, "unexpected result register");
    }

    // Load's index and Ret's value are optional; Store's index is optional
    // beyond the mandatory stored value.
    unsigned MinUses = Info.NumUses;
    if (Inst.opcode() == Opcode::Load || Inst.opcode() == Opcode::Ret)
      MinUses = 0;
    else if (Inst.opcode() == Opcode::Store)
      MinUses = 1;
    if (Inst.uses().size() < MinUses || Inst.uses().size() > Info.NumUses)
      return fail(B, I, "wrong number of register operands");
    for (Reg U : Inst.uses())
      if (!checkReg(B, I, U))
        return false;

    if (Inst.isMemory()) {
      if (Inst.arraySymbol().empty())
        return fail(B, I, "memory instruction without an array symbol");
      unsigned Size = F.arraySize(Inst.arraySymbol());
      bool Direct = Inst.opcode() == Opcode::Load ? Inst.uses().empty()
                                                  : Inst.uses().size() == 1;
      if (Direct && Size != 0 &&
          (Inst.imm() < 0 || Inst.imm() >= static_cast<int64_t>(Size)))
        return fail(B, I, "constant address out of declared array bounds");
    }

    for (unsigned T : Inst.targets())
      if (T >= F.numBlocks())
        return fail(B, I, "branch target out of range");
    unsigned WantTargets = Inst.opcode() == Opcode::Br      ? 1
                           : Inst.opcode() == Opcode::CondBr ? 2
                                                             : 0;
    if (Inst.targets().size() != WantTargets)
      return fail(B, I, "wrong number of branch targets");
    return true;
  }

  const Function &F;
  std::string &Error;
};

} // namespace

bool pira::verifyFunction(const Function &F, std::string &Error) {
  Error.clear();
  return Checker(F, Error).run();
}

Status pira::verifyFunctionStatus(const Function &F) {
  std::string Error;
  if (verifyFunction(F, Error))
    return Status();
  Status S = Status::error(ErrorCode::VerifyError, "verify", Error);
  S.addContext("function @" + F.name());
  return S;
}
