//===- ir/Parser.h - Textual IR parser --------------------------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual IR syntax emitted by the Printer. Used by tests (for
/// round-trip checks and compact fixtures) and by examples that compile
/// source written by hand.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_IR_PARSER_H
#define PIRA_IR_PARSER_H

#include "support/Status.h"

#include <string>
#include <string_view>

namespace pira {

class Function;

/// Parses \p Text into \p F.
///
/// On failure returns false and stores a "line N: message" diagnostic into
/// \p Error; \p F is left in an unspecified state. On success \p F holds
/// the parsed function and Error is empty.
bool parseFunction(std::string_view Text, Function &F, std::string &Error);

/// Structured-diagnostic front end to parseFunction. Runs the
/// "parse.enter" fault-injection site first (an injected fault comes back
/// as a FaultInjected Status, not an exception — parsing happens on the
/// driver thread, outside the guarded-compile exception net). Parse
/// failures come back as a ParseError Status whose context names
/// \p Name (a file name or other input label; "<input>" when empty).
Expected<Function> parseFunctionEx(std::string_view Text,
                                   std::string_view Name = {});

} // namespace pira

#endif // PIRA_IR_PARSER_H
