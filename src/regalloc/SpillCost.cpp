//===- regalloc/SpillCost.cpp - Per-web spill cost estimation -------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "regalloc/SpillCost.h"

#include "analysis/Webs.h"
#include "ir/Function.h"
#include "support/BitMatrix.h"

using namespace pira;

std::vector<double> pira::computeSpillCosts(const Function &F, const Webs &W,
                                            double LoopFactor) {
  unsigned NumBlocks = F.numBlocks();

  // Block B is "in a loop" when it can reach itself.
  BitMatrix Reach(NumBlocks);
  for (unsigned B = 0; B != NumBlocks; ++B)
    for (unsigned S : F.block(B).successors())
      Reach.set(B, S);
  Reach.transitiveClosure();
  std::vector<double> BlockWeight(NumBlocks, 1.0);
  for (unsigned B = 0; B != NumBlocks; ++B)
    if (Reach.test(B, B))
      BlockWeight[B] = LoopFactor;

  std::vector<double> Costs(W.numWebs(), 0.0);
  for (unsigned B = 0; B != NumBlocks; ++B) {
    const BasicBlock &BB = F.block(B);
    for (unsigned I = 0, E = BB.size(); I != E; ++I) {
      const Instruction &Inst = BB.inst(I);
      for (unsigned Op = 0, OE = static_cast<unsigned>(Inst.uses().size());
           Op != OE; ++Op)
        Costs[W.webOfUse(B, I, Op)] += BlockWeight[B];
      if (Inst.hasDef())
        Costs[W.webOfDef(B, I)] += BlockWeight[B];
    }
  }
  // A web carrying a function input costs a little extra to spill (its
  // value must be stored on entry).
  for (unsigned Web = 0, E = W.numWebs(); Web != E; ++Web)
    if (W.hasEntryDef(Web))
      Costs[Web] += 1.0;
  return Costs;
}
