//===- regalloc/Allocation.cpp - Coloring results and rewriting -----------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "regalloc/Allocation.h"

#include "analysis/Webs.h"
#include "ir/Function.h"
#include "support/UndirectedGraph.h"

#include <cassert>

using namespace pira;

void pira::assignColorsGreedy(const UndirectedGraph &G,
                              const std::vector<unsigned> &Stack,
                              Allocation &Out) {
  for (auto It = Stack.rbegin(), E = Stack.rend(); It != E; ++It) {
    unsigned V = *It;
    const BitVector &Neigh = G.neighbors(V);
    std::vector<bool> Used;
    for (int N = Neigh.findFirst(); N != -1;
         N = Neigh.findNext(static_cast<unsigned>(N))) {
      int C = Out.ColorOfWeb[static_cast<unsigned>(N)];
      if (C < 0)
        continue;
      if (Used.size() <= static_cast<size_t>(C))
        Used.resize(static_cast<size_t>(C) + 1, false);
      Used[static_cast<size_t>(C)] = true;
    }
    unsigned Color = 0;
    while (Color < Used.size() && Used[Color])
      ++Color;
    Out.ColorOfWeb[V] = static_cast<int>(Color);
    Out.NumColorsUsed = std::max(Out.NumColorsUsed, Color + 1);
  }
}

void pira::applyAllocation(Function &F, const Webs &W, const Allocation &A) {
  assert(A.ColorOfWeb.size() == W.numWebs() && "stale allocation");
  unsigned MaxColor = 0;
  for (unsigned B = 0, NB = F.numBlocks(); B != NB; ++B) {
    BasicBlock &BB = F.block(B);
    for (unsigned I = 0, E = BB.size(); I != E; ++I) {
      Instruction &Inst = BB.inst(I);
      // Rewrite uses before the def: webOfUse indexes the pre-rewrite
      // operand list, which setUse leaves structurally intact.
      for (unsigned Op = 0, OE = static_cast<unsigned>(Inst.uses().size());
           Op != OE; ++Op) {
        int Color = A.ColorOfWeb[W.webOfUse(B, I, Op)];
        assert(Color >= 0 && "applying an allocation with spilled webs");
        Inst.setUse(Op, static_cast<Reg>(Color));
        MaxColor = std::max(MaxColor, static_cast<unsigned>(Color));
      }
      if (Inst.hasDef()) {
        int Color = A.ColorOfWeb[W.webOfDef(B, I)];
        assert(Color >= 0 && "applying an allocation with spilled webs");
        Inst.setDef(static_cast<Reg>(Color));
        MaxColor = std::max(MaxColor, static_cast<unsigned>(Color));
      }
    }
  }
  F.setAllocated(true);
  F.setNumRegs(F.totalInstructions() == 0 ? 0 : MaxColor + 1);
}
