//===- regalloc/ChaitinAllocator.h - Baseline graph coloring ----*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic Chaitin et al. allocator the paper baselines against:
/// simplify vertices of degree < r, send the cheapest cost/degree vertex
/// to the spill list when stuck, color in reverse removal order, and when
/// anything spilled, insert spill code and repeat on the rewritten
/// program. It colors the plain interference graph, so it may freely
/// introduce false dependences — the behaviour the paper's framework
/// eliminates.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_REGALLOC_CHAITINALLOCATOR_H
#define PIRA_REGALLOC_CHAITINALLOCATOR_H

#include "regalloc/Allocation.h"

#include <vector>

namespace pira {

class Function;
class UndirectedGraph;

/// One round of Chaitin coloring on an arbitrary conflict graph.
///
/// Vertices whose cost is infinite are never chosen for spilling.
/// \p NumRegs is the color budget r. \returns colors per vertex (-1 for
/// vertices on the spill list).
Allocation chaitinColor(const UndirectedGraph &G,
                        const std::vector<double> &Costs, unsigned NumRegs);

/// Briggs-style *optimistic* variant of chaitinColor: would-be spill
/// candidates are pushed on the removal stack anyway, and a vertex lands
/// on the spill list only if the select phase finds all NumRegs colors
/// taken by its neighbors. Never spills more vertices than the
/// pessimistic procedure on the same graph; included as the era's
/// standard improvement (Briggs et al. 1989) for baseline comparisons.
Allocation briggsColor(const UndirectedGraph &G,
                       const std::vector<double> &Costs, unsigned NumRegs);

/// Statistics of a full allocation run.
struct AllocStats {
  bool Success = false;      ///< Everything colored within the round cap.
  unsigned Rounds = 0;       ///< Color/spill/repeat iterations.
  unsigned ColorsUsed = 0;   ///< Distinct colors in the final coloring.
  unsigned SpilledWebs = 0;  ///< Webs sent to memory, summed over rounds.
  unsigned SpillStores = 0;  ///< Store instructions inserted.
  unsigned SpillLoads = 0;   ///< Load instructions inserted.
};

/// Allocates \p F onto \p NumRegs registers with the Chaitin loop,
/// mutating \p F (spill code, then physical-register rewrite). On failure
/// (round cap hit) \p F is left in symbolic form with spill code from the
/// attempted rounds. When \p SymbolicSnapshot is non-null it receives the
/// final symbolic-form code (post-spill, pre-renaming) — the twin the
/// false-dependence checker compares against.
AllocStats chaitinAllocate(Function &F, unsigned NumRegs,
                           unsigned MaxRounds = 32,
                           Function *SymbolicSnapshot = nullptr);

} // namespace pira

#endif // PIRA_REGALLOC_CHAITINALLOCATOR_H
