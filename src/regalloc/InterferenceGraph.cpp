//===- regalloc/InterferenceGraph.cpp - Live-range interference -----------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "regalloc/InterferenceGraph.h"

#include "analysis/Webs.h"
#include "ir/Function.h"

#include <algorithm>

using namespace pira;

InterferenceGraph::InterferenceGraph(const Function &F, const Webs &W) {
  unsigned NumBlocks = F.numBlocks();
  unsigned NumWebs = W.numWebs();
  Graph = UndirectedGraph(NumWebs);

  // Web-granularity liveness. The web binding already resolves which
  // definition(s) feed each use, so block-local Use/Def sets over webs
  // give exact may-liveness at web level.
  std::vector<BitVector> UseW(NumBlocks, BitVector(NumWebs));
  std::vector<BitVector> DefW(NumBlocks, BitVector(NumWebs));
  for (unsigned B = 0; B != NumBlocks; ++B) {
    const BasicBlock &BB = F.block(B);
    for (unsigned I = 0, E = BB.size(); I != E; ++I) {
      const Instruction &Inst = BB.inst(I);
      for (unsigned Op = 0, OE = static_cast<unsigned>(Inst.uses().size());
           Op != OE; ++Op) {
        unsigned Web = W.webOfUse(B, I, Op);
        if (!DefW[B].test(Web))
          UseW[B].set(Web);
      }
      if (Inst.hasDef())
        DefW[B].set(W.webOfDef(B, I));
    }
  }

  LiveInW.assign(NumBlocks, BitVector(NumWebs));
  LiveOutW.assign(NumBlocks, BitVector(NumWebs));
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned B = NumBlocks; B-- != 0;) {
      BitVector Out(NumWebs);
      for (unsigned Succ : F.block(B).successors())
        Out.unionWith(LiveInW[Succ]);
      BitVector In = Out;
      In.subtract(DefW[B]);
      In.unionWith(UseW[B]);
      if (Out != LiveOutW[B] || In != LiveInW[B]) {
        LiveOutW[B] = std::move(Out);
        LiveInW[B] = std::move(In);
        Changed = true;
      }
    }
  }

  // Webs carrying function inputs are all "defined" together at entry:
  // any two simultaneously live there interfere even though no textual
  // definition exists.
  const BitVector &EntryLive = LiveInW[0];
  for (int A = EntryLive.findFirst(); A != -1;
       A = EntryLive.findNext(static_cast<unsigned>(A)))
    for (int B = EntryLive.findNext(static_cast<unsigned>(A)); B != -1;
         B = EntryLive.findNext(static_cast<unsigned>(B)))
      Graph.addEdge(static_cast<unsigned>(A), static_cast<unsigned>(B));

  // Interference: walk each block backward; at a definition, the defined
  // web conflicts with everything currently live (minus itself). A value
  // whose last use feeds this very instruction is no longer in Live, which
  // implements the paper's open interval endpoint.
  for (unsigned B = 0; B != NumBlocks; ++B) {
    const BasicBlock &BB = F.block(B);
    BitVector Live = LiveOutW[B];
    MaxPressure = std::max(MaxPressure, Live.count());
    for (unsigned I = BB.size(); I-- != 0;) {
      const Instruction &Inst = BB.inst(I);
      if (Inst.hasDef()) {
        unsigned DefWeb = W.webOfDef(B, I);
        for (int Other = Live.findFirst(); Other != -1;
             Other = Live.findNext(static_cast<unsigned>(Other)))
          if (static_cast<unsigned>(Other) != DefWeb)
            Graph.addEdge(DefWeb, static_cast<unsigned>(Other));
        Live.reset(DefWeb);
      }
      for (unsigned Op = 0, OE = static_cast<unsigned>(Inst.uses().size());
           Op != OE; ++Op)
        Live.set(W.webOfUse(B, I, Op));
      MaxPressure = std::max(MaxPressure, Live.count());
    }
  }
}
