//===- regalloc/ChaitinAllocator.cpp - Baseline graph coloring ------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "regalloc/ChaitinAllocator.h"

#include "analysis/Webs.h"
#include "ir/Function.h"
#include "regalloc/InterferenceGraph.h"
#include "regalloc/SpillCost.h"
#include "regalloc/SpillInserter.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "support/UndirectedGraph.h"

#include <cassert>
#include <limits>
#include <set>

using namespace pira;

PIRA_STAT(NumChaitinRounds, "Chaitin color/spill/repeat rounds run");
PIRA_STAT(NumChaitinSpilledWebs, "Webs the Chaitin allocator sent to memory");

Allocation pira::chaitinColor(const UndirectedGraph &G,
                              const std::vector<double> &Costs,
                              unsigned NumRegs) {
  unsigned N = G.numVertices();
  assert(Costs.size() == N && "cost vector size mismatch");
  Allocation Out;
  Out.ColorOfWeb.assign(N, -1);

  UndirectedGraph Work = G;
  std::vector<bool> Removed(N, false);
  std::vector<unsigned> Stack;
  unsigned Remaining = N;

  auto RemoveVertex = [&](unsigned V) {
    for (unsigned Neigh : Work.neighborList(V))
      Work.removeEdge(V, Neigh);
    Removed[V] = true;
    --Remaining;
  };

  while (Remaining != 0) {
    // Simplify: peel vertices with degree below the register budget.
    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (unsigned V = 0; V != N; ++V) {
        if (Removed[V] || Work.degree(V) >= NumRegs)
          continue;
        Stack.push_back(V);
        RemoveVertex(V);
        Progress = true;
      }
    }
    if (Remaining == 0)
      break;

    // Stuck: every survivor has degree >= r. Place the cheapest
    // cost/degree vertex on the spill list (the paper's h function).
    unsigned Victim = ~0u;
    double BestH = std::numeric_limits<double>::infinity();
    for (unsigned V = 0; V != N; ++V) {
      if (Removed[V])
        continue;
      double H = Costs[V] / static_cast<double>(Work.degree(V));
      // The first survivor seeds the choice so a round of all-infinite
      // costs still makes progress.
      if (Victim == ~0u || H < BestH) {
        BestH = H;
        Victim = V;
      }
    }
    assert(Victim != ~0u && "no spill candidate among survivors");
    Out.SpilledWebs.push_back(Victim);
    RemoveVertex(Victim);
  }

  if (Out.SpilledWebs.empty())
    assignColorsGreedy(G, Stack, Out);
  return Out;
}

Allocation pira::briggsColor(const UndirectedGraph &G,
                             const std::vector<double> &Costs,
                             unsigned NumRegs) {
  unsigned N = G.numVertices();
  assert(Costs.size() == N && "cost vector size mismatch");
  Allocation Out;
  Out.ColorOfWeb.assign(N, -1);

  UndirectedGraph Work = G;
  std::vector<bool> Removed(N, false);
  std::vector<unsigned> Stack;
  unsigned Remaining = N;
  auto RemoveVertex = [&](unsigned V) {
    for (unsigned Neigh : Work.neighborList(V))
      Work.removeEdge(V, Neigh);
    Removed[V] = true;
    --Remaining;
  };

  while (Remaining != 0) {
    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (unsigned V = 0; V != N; ++V) {
        if (Removed[V] || Work.degree(V) >= NumRegs)
          continue;
        Stack.push_back(V);
        RemoveVertex(V);
        Progress = true;
      }
    }
    if (Remaining == 0)
      break;
    // Optimistic twist: the would-be spill victim is pushed like any
    // other vertex; select decides its fate.
    unsigned Victim = ~0u;
    double BestH = std::numeric_limits<double>::infinity();
    for (unsigned V = 0; V != N; ++V) {
      if (Removed[V])
        continue;
      double H = Costs[V] / static_cast<double>(Work.degree(V));
      if (Victim == ~0u || H < BestH) {
        BestH = H;
        Victim = V;
      }
    }
    Stack.push_back(Victim);
    RemoveVertex(Victim);
  }

  // Capped select: a vertex whose neighbors exhaust the register file
  // becomes an actual spill.
  for (auto It = Stack.rbegin(), E = Stack.rend(); It != E; ++It) {
    unsigned V = *It;
    std::vector<bool> Used(NumRegs, false);
    const BitVector &Neigh = G.neighbors(V);
    for (int Nb = Neigh.findFirst(); Nb != -1;
         Nb = Neigh.findNext(static_cast<unsigned>(Nb))) {
      int C = Out.ColorOfWeb[static_cast<unsigned>(Nb)];
      if (C >= 0 && static_cast<unsigned>(C) < NumRegs)
        Used[static_cast<unsigned>(C)] = true;
    }
    unsigned Color = 0;
    while (Color < NumRegs && Used[Color])
      ++Color;
    if (Color == NumRegs) {
      Out.SpilledWebs.push_back(V);
      continue;
    }
    Out.ColorOfWeb[V] = static_cast<int>(Color);
    Out.NumColorsUsed = std::max(Out.NumColorsUsed, Color + 1);
  }
  return Out;
}

AllocStats pira::chaitinAllocate(Function &F, unsigned NumRegs,
                                 unsigned MaxRounds,
                                 Function *SymbolicSnapshot) {
  PIRA_TIME_SCOPE("alloc/chaitin");
  AllocStats Stats;
  std::set<Reg> NoSpillRegs;
  constexpr double Infinite = std::numeric_limits<double>::infinity();

  for (unsigned Round = 0; Round != MaxRounds; ++Round) {
    // Cooperative watchdog: a stalled color/spill/repeat loop unwinds
    // here instead of holding its worker hostage.
    deadline::checkpoint();
    ++Stats.Rounds;
    ++NumChaitinRounds;
    Webs W(F);
    InterferenceGraph IG(F, W);
    std::vector<double> Costs = computeSpillCosts(F, W);
    for (unsigned Web = 0, E = W.numWebs(); Web != E; ++Web)
      if (NoSpillRegs.count(W.webRegister(Web)))
        Costs[Web] = Infinite;

    Allocation A = [&] {
      PIRA_TIME_SCOPE("alloc/coloring");
      return chaitinColor(IG.graph(), Costs, NumRegs);
    }();
    if (A.fullyColored()) {
      if (SymbolicSnapshot != nullptr)
        *SymbolicSnapshot = F;
      applyAllocation(F, W, A);
      Stats.Success = true;
      Stats.ColorsUsed = A.NumColorsUsed;
      return Stats;
    }
    Stats.SpilledWebs += static_cast<unsigned>(A.SpilledWebs.size());
    NumChaitinSpilledWebs += A.SpilledWebs.size();
    SpillCode Code = insertSpillCode(F, W, A.SpilledWebs, NoSpillRegs);
    Stats.SpillStores += Code.Stores;
    Stats.SpillLoads += Code.Loads;
  }
  return Stats;
}
