//===- regalloc/SpillInserter.cpp - Spill code rewriting ------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "regalloc/SpillInserter.h"

#include "analysis/Webs.h"
#include "ir/Function.h"
#include "support/Telemetry.h"

#include <cassert>
#include <map>

using namespace pira;

PIRA_STAT(NumSpillStoresInserted, "Spill stores inserted after definitions");
PIRA_STAT(NumSpillLoadsInserted, "Spill reloads inserted before uses");

SpillCode pira::insertSpillCode(Function &F, const Webs &W,
                                const std::vector<unsigned> &SpillWebs,
                                std::set<Reg> &NoSpillRegs) {
  SpillCode Code;
  if (SpillWebs.empty())
    return Code;
  PIRA_TIME_SCOPE("spill/insert");

  // Assign slots past any slots earlier rounds claimed.
  unsigned FirstSlot = F.arraySize(SpillArrayName);
  std::map<unsigned, unsigned> SlotOfWeb;
  for (unsigned I = 0, E = static_cast<unsigned>(SpillWebs.size()); I != E;
       ++I) {
    SlotOfWeb[SpillWebs[I]] = FirstSlot + I;
    NoSpillRegs.insert(W.webRegister(SpillWebs[I]));
  }
  F.declareArray(SpillArrayName,
                 FirstSlot + static_cast<unsigned>(SpillWebs.size()));

  auto MakeLoad = [&](unsigned Slot) {
    Reg Fresh = F.makeReg();
    NoSpillRegs.insert(Fresh);
    Instruction L(Opcode::Load, Fresh, {}, static_cast<int64_t>(Slot));
    L.setArraySymbol(SpillArrayName);
    ++Code.Loads;
    return std::pair<Instruction, Reg>(std::move(L), Fresh);
  };
  auto MakeStore = [&](unsigned Slot, Reg Value) {
    Instruction S(Opcode::Store, NoReg, {Value},
                  static_cast<int64_t>(Slot));
    S.setArraySymbol(SpillArrayName);
    ++Code.Stores;
    return S;
  };

  for (unsigned B = 0, NB = F.numBlocks(); B != NB; ++B) {
    BasicBlock &BB = F.block(B);
    std::vector<Instruction> NewInsts;
    NewInsts.reserve(BB.size());

    // Function-input values of spilled webs materialize in their register
    // at entry; park them in their slot before anything else runs.
    if (B == 0)
      for (unsigned Web : SpillWebs)
        if (W.hasEntryDef(Web))
          NewInsts.push_back(
              MakeStore(SlotOfWeb[Web], W.webRegister(Web)));

    for (unsigned I = 0, E = BB.size(); I != E; ++I) {
      Instruction Inst = BB.inst(I);

      // One reload per distinct spilled web feeding this instruction.
      std::map<unsigned, Reg> ReloadOfWeb;
      for (unsigned Op = 0, OE = static_cast<unsigned>(Inst.uses().size());
           Op != OE; ++Op) {
        unsigned Web = W.webOfUse(B, I, Op);
        auto SlotIt = SlotOfWeb.find(Web);
        if (SlotIt == SlotOfWeb.end())
          continue;
        auto ReloadIt = ReloadOfWeb.find(Web);
        if (ReloadIt == ReloadOfWeb.end()) {
          auto [L, Fresh] = MakeLoad(SlotIt->second);
          NewInsts.push_back(std::move(L));
          ReloadIt = ReloadOfWeb.emplace(Web, Fresh).first;
        }
        Inst.setUse(Op, ReloadIt->second);
      }

      bool StoreAfter = false;
      unsigned Slot = 0;
      if (Inst.hasDef()) {
        auto It = SlotOfWeb.find(W.webOfDef(B, I));
        if (It != SlotOfWeb.end()) {
          StoreAfter = true;
          Slot = It->second;
        }
      }
      Reg DefReg = Inst.hasDef() ? Inst.def() : NoReg;
      NewInsts.push_back(std::move(Inst));
      if (StoreAfter)
        NewInsts.push_back(MakeStore(Slot, DefReg));
    }
    BB.instructions() = std::move(NewInsts);
  }
  NumSpillStoresInserted += Code.Stores;
  NumSpillLoadsInserted += Code.Loads;
  return Code;
}
