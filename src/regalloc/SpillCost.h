//===- regalloc/SpillCost.h - Per-web spill cost estimation -----*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's cost function: "the cost function, in general, is a
/// function of the instruction's nesting level." Each def or use of a web
/// contributes a dynamic-frequency weight of LoopFactor^depth, where depth
/// is 1 for blocks that sit on a CFG cycle and 0 otherwise (a one-level
/// approximation adequate for the kernels in this repository).
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_REGALLOC_SPILLCOST_H
#define PIRA_REGALLOC_SPILLCOST_H

#include <vector>

namespace pira {

class Function;
class Webs;

/// Computes the spill cost of every web of \p F.
std::vector<double> computeSpillCosts(const Function &F, const Webs &W,
                                      double LoopFactor = 10.0);

} // namespace pira

#endif // PIRA_REGALLOC_SPILLCOST_H
