//===- regalloc/InterferenceGraph.h - Live-range interference ---*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic Chaitin-style interference graph Gr: one vertex per web
/// (compound live interval) and an undirected edge when one definition is
/// live where the other is defined. Per the paper, the statement of a
/// value's last use is excluded from its interval, so a register can be
/// reused by the instruction that last reads it.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_REGALLOC_INTERFERENCEGRAPH_H
#define PIRA_REGALLOC_INTERFERENCEGRAPH_H

#include "support/BitVector.h"
#include "support/UndirectedGraph.h"

#include <vector>

namespace pira {

class Function;
class Webs;

/// Interference over webs, with web-granularity liveness as a byproduct.
class InterferenceGraph {
public:
  /// Builds Gr for \p F using the web partition \p W.
  InterferenceGraph(const Function &F, const Webs &W);

  /// Returns the number of vertices (webs).
  unsigned numWebs() const { return Graph.numVertices(); }

  /// The undirected edge structure.
  const UndirectedGraph &graph() const { return Graph; }

  /// Returns true when webs \p A and \p B interfere.
  bool interfere(unsigned A, unsigned B) const {
    return Graph.hasEdge(A, B);
  }

  /// Webs live on entry to block \p B.
  const BitVector &liveIn(unsigned B) const { return LiveInW[B]; }

  /// Webs live on exit from block \p B.
  const BitVector &liveOut(unsigned B) const { return LiveOutW[B]; }

  /// The maximum number of webs simultaneously live at any program point
  /// (a lower bound on the chromatic number absent spills).
  unsigned maxLivePressure() const { return MaxPressure; }

private:
  UndirectedGraph Graph;
  std::vector<BitVector> LiveInW;
  std::vector<BitVector> LiveOutW;
  unsigned MaxPressure = 0;
};

} // namespace pira

#endif // PIRA_REGALLOC_INTERFERENCEGRAPH_H
