//===- regalloc/Allocation.h - Coloring results and rewriting ---*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common result type shared by the Chaitin baseline and the Pinter
/// combined allocator, and the operand-rewriting step that turns a web
/// coloring into physical-register code.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_REGALLOC_ALLOCATION_H
#define PIRA_REGALLOC_ALLOCATION_H

#include <vector>

namespace pira {

class Function;
class Webs;

/// A register assignment over webs.
struct Allocation {
  /// Color (physical register) per web; -1 for spilled webs.
  std::vector<int> ColorOfWeb;

  /// Number of distinct colors used.
  unsigned NumColorsUsed = 0;

  /// Webs sent to memory across all spill rounds, in spill order.
  std::vector<unsigned> SpilledWebs;

  /// Coloring rounds executed (1 when no spill was needed).
  unsigned Rounds = 1;

  /// Parallel (false-dependence) edges the Pinter allocator dropped under
  /// register pressure; always 0 for the Chaitin baseline.
  unsigned ParallelEdgesDropped = 0;

  /// Returns true when every web received a color.
  bool fullyColored() const { return SpilledWebs.empty(); }
};

/// Rewrites \p F in place, replacing every register operand with the
/// color of its web under \p A. Marks the function allocated and shrinks
/// its register space to the colors used. Every web must be colored.
void applyAllocation(Function &F, const Webs &W, const Allocation &A);

class UndirectedGraph;

/// Chaitin-style select phase: pops \p Stack (reverse removal order) and
/// gives each vertex the lowest color absent among its already-colored
/// neighbors in \p G, updating \p Out.ColorOfWeb / NumColorsUsed.
/// Vertices not on the stack keep their existing color entries.
void assignColorsGreedy(const UndirectedGraph &G,
                        const std::vector<unsigned> &Stack, Allocation &Out);

} // namespace pira

#endif // PIRA_REGALLOC_ALLOCATION_H
