//===- regalloc/SpillInserter.h - Spill code rewriting ----------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Spill-everywhere rewriting: a spilled web gets a dedicated slot in the
/// reserved `spillmem` array, a store after every definition, and a fresh
/// reload register before every use. Fresh registers (and the spilled
/// register itself) are reported so allocators can pin them as
/// unspillable, guaranteeing the color/spill/repeat loop terminates.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_REGALLOC_SPILLINSERTER_H
#define PIRA_REGALLOC_SPILLINSERTER_H

#include "ir/Instruction.h"

#include <set>
#include <vector>

namespace pira {

class Function;
class Webs;

/// Name of the reserved array backing spill slots.
inline constexpr const char *SpillArrayName = "spillmem";

/// Instruction counts added by one spill round.
struct SpillCode {
  unsigned Stores = 0;
  unsigned Loads = 0;
};

/// Rewrites \p F in place, spilling every web in \p SpillWebs (ids under
/// \p W, which must describe the current \p F). Registers that must not
/// be chosen for spilling again — reload temporaries and the spilled
/// webs' own registers — are added to \p NoSpillRegs.
SpillCode insertSpillCode(Function &F, const Webs &W,
                          const std::vector<unsigned> &SpillWebs,
                          std::set<Reg> &NoSpillRegs);

} // namespace pira

#endif // PIRA_REGALLOC_SPILLINSERTER_H
