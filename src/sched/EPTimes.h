//===- sched/EPTimes.h - Earliest-possible issue times ----------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// EP numbers from the paper's Section 4: the earliest possible time each
/// instruction can issue, computed as a longest path over the schedule
/// graph with edge delays ("in [7] EP stands for early partition"). Also
/// the dual — height to the farthest sink — used as the list scheduler's
/// critical-path priority.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SCHED_EPTIMES_H
#define PIRA_SCHED_EPTIMES_H

#include <vector>

namespace pira {

class DependenceGraph;

/// Returns EP[v]: the longest-path distance (sum of edge latencies) from
/// any source to v. Sources have EP 0.
std::vector<unsigned> computeEP(const DependenceGraph &G);

/// Returns height[v]: the longest-path distance from v to any sink,
/// counting v's own contribution via its outgoing latencies. Higher means
/// more urgent.
std::vector<unsigned> computeHeights(const DependenceGraph &G);

} // namespace pira

#endif // PIRA_SCHED_EPTIMES_H
