//===- sched/Schedule.h - Schedule result types -----------------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cycle assignments produced by the list scheduler: per block, the issue
/// cycle of every instruction, and derived makespan / utilization
/// figures.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SCHED_SCHEDULE_H
#define PIRA_SCHED_SCHEDULE_H

#include <cassert>
#include <vector>

namespace pira {

/// Cycle assignment for one basic block.
struct BlockSchedule {
  /// Issue cycle per instruction (indexed by position in the block).
  std::vector<unsigned> CycleOf;

  /// Number of cycles the block occupies (last issue cycle + 1; zero for
  /// an empty block).
  unsigned Makespan = 0;

  /// Instruction indices grouped by cycle, ascending within each cycle.
  std::vector<std::vector<unsigned>> groupsByCycle() const {
    std::vector<std::vector<unsigned>> Groups(Makespan);
    for (unsigned I = 0, E = static_cast<unsigned>(CycleOf.size()); I != E;
         ++I) {
      assert(CycleOf[I] < Makespan && "cycle out of range");
      Groups[CycleOf[I]].push_back(I);
    }
    return Groups;
  }
};

/// Cycle assignments for every block of a function.
struct FunctionSchedule {
  std::vector<BlockSchedule> Blocks;

  /// Static cycle total: the sum of block makespans (each block entered
  /// once). Dynamic totals come from the simulator.
  unsigned totalMakespan() const {
    unsigned Total = 0;
    for (const BlockSchedule &B : Blocks)
      Total += B.Makespan;
    return Total;
  }
};

} // namespace pira

#endif // PIRA_SCHED_SCHEDULE_H
