//===- sched/EPTimes.cpp - Earliest-possible issue times ------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "sched/EPTimes.h"

#include "analysis/DependenceGraph.h"

#include <algorithm>

using namespace pira;

std::vector<unsigned> pira::computeEP(const DependenceGraph &G) {
  unsigned N = G.size();
  std::vector<unsigned> EP(N, 0);
  // Instruction indices are already a topological order of the schedule
  // graph (edges point forward in program order), so one forward pass
  // computes longest paths.
  for (unsigned V = 0; V != N; ++V)
    for (unsigned EI : G.succEdges(V)) {
      const DepEdge &E = G.edges()[EI];
      EP[E.To] = std::max(EP[E.To], EP[V] + E.Latency);
    }
  return EP;
}

std::vector<unsigned> pira::computeHeights(const DependenceGraph &G) {
  unsigned N = G.size();
  std::vector<unsigned> Height(N, 0);
  for (unsigned V = N; V-- != 0;)
    for (unsigned EI : G.succEdges(V)) {
      const DepEdge &E = G.edges()[EI];
      Height[V] = std::max(Height[V], Height[E.To] + E.Latency);
    }
  return Height;
}
