//===- sched/IntegratedPrepass.cpp - Goodman-Hsu IPS scheduler ------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "sched/IntegratedPrepass.h"

#include "analysis/DependenceGraph.h"
#include "analysis/Liveness.h"
#include "ir/Function.h"
#include "machine/MachineModel.h"
#include "sched/EPTimes.h"
#include "sched/ListScheduler.h"
#include "sched/Schedule.h"
#include "support/Telemetry.h"

#include <array>
#include <cassert>
#include <map>

using namespace pira;

PIRA_STAT(NumIpsPressureDecisions,
          "Goodman-Hsu picks made in register-reducing (CSR) mode");
PIRA_STAT(NumIpsMoves, "Instructions repositioned by the IPS prepass");

namespace {

/// Dual-mode list scheduling of one block.
class IpsBlockScheduler {
public:
  IpsBlockScheduler(const Function &F, unsigned BlockIdx,
                    const MachineModel &Machine, const Liveness &Live,
                    unsigned RegLimit, IpsStats &Stats)
      : F(F), BB(F.block(BlockIdx)), Machine(Machine),
        G(F, BlockIdx, Machine), RegLimit(RegLimit), Stats(Stats) {
    unsigned N = G.size();
    Height = computeHeights(G);
    PredsLeft.assign(N, 0);
    for (unsigned V = 0; V != N; ++V)
      PredsLeft[V] = static_cast<unsigned>(G.predEdges(V).size());
    ReadyAt.assign(N, 0);
    Issued.assign(N, false);

    // Remaining in-block uses per register, and whether the value
    // escapes (live-out) — an escaping value never dies here.
    for (const Instruction &I : BB.instructions())
      for (Reg U : I.uses())
        ++RemainingUses[U];
    LiveOut = Live.liveOut(BlockIdx);
    // Live on entry to the scheduling region: upward-exposed registers.
    const BitVector &UpwardExposed = Live.upwardExposed(BlockIdx);
    LiveCount = UpwardExposed.count();
  }

  BlockSchedule run() {
    unsigned N = G.size();
    BlockSchedule Out;
    Out.CycleOf.assign(N, 0);
    unsigned Remaining = N;
    unsigned Cycle = 0;
    while (Remaining != 0) {
      unsigned SlotsLeft = Machine.issueWidth();
      std::array<unsigned, NumUnitKinds> UnitsLeft{};
      for (unsigned K = 0; K != NumUnitKinds; ++K)
        UnitsLeft[K] = Machine.units(static_cast<UnitKind>(K));
      bool IssuedAny = true;
      while (IssuedAny && SlotsLeft != 0) {
        IssuedAny = false;
        unsigned Best = pickCandidate(Cycle, UnitsLeft);
        if (Best == ~0u)
          break;
        issue(Best, Cycle, Out);
        --Remaining;
        --SlotsLeft;
        --UnitsLeft[static_cast<unsigned>(BB.inst(Best).unit())];
        IssuedAny = true;
      }
      ++Cycle;
    }
    Out.Makespan = Cycle;
    return Out;
  }

private:
  /// Net live-value change if \p V issues now: +1 for a def that anyone
  /// still needs, -1 per operand whose last remaining use this is.
  int pressureDelta(unsigned V) const {
    const Instruction &I = BB.inst(V);
    int Delta = 0;
    if (I.hasDef())
      ++Delta;
    // Count distinct operand registers that would die.
    std::map<Reg, unsigned> OpCount;
    for (Reg U : I.uses())
      ++OpCount[U];
    for (const auto &[R, Count] : OpCount) {
      auto It = RemainingUses.find(R);
      if (It != RemainingUses.end() && It->second == Count &&
          (R >= LiveOut.size() || !LiveOut.test(R)))
        --Delta;
    }
    return Delta;
  }

  unsigned pickCandidate(unsigned Cycle,
                         const std::array<unsigned, NumUnitKinds> &Units) {
    bool PressureMode = LiveCount >= RegLimit;
    unsigned Best = ~0u;
    int BestDelta = 0;
    for (unsigned V = 0; V != G.size(); ++V) {
      if (Issued[V] || PredsLeft[V] != 0 || ReadyAt[V] > Cycle)
        continue;
      if (Units[static_cast<unsigned>(BB.inst(V).unit())] == 0)
        continue;
      if (Best == ~0u) {
        Best = V;
        BestDelta = pressureDelta(V);
        continue;
      }
      if (PressureMode) {
        // CSR: smallest pressure delta first; ties by height.
        int Delta = pressureDelta(V);
        if (Delta < BestDelta ||
            (Delta == BestDelta && Height[V] > Height[Best])) {
          Best = V;
          BestDelta = Delta;
        }
      } else if (Height[V] > Height[Best]) {
        // CSP: critical path height.
        Best = V;
      }
    }
    if (Best != ~0u) {
      if (PressureMode)
        ++Stats.CsrDecisions;
      else
        ++Stats.CspDecisions;
    }
    return Best;
  }

  void issue(unsigned V, unsigned Cycle, BlockSchedule &Out) {
    Issued[V] = true;
    Out.CycleOf[V] = Cycle;
    const Instruction &I = BB.inst(V);
    std::map<Reg, unsigned> OpCount;
    for (Reg U : I.uses())
      ++OpCount[U];
    for (const auto &[R, Count] : OpCount) {
      unsigned &Left = RemainingUses[R];
      assert(Left >= Count && "use accounting out of sync");
      Left -= Count;
      if (Left == 0 && (R >= LiveOut.size() || !LiveOut.test(R)) &&
          LiveCount > 0)
        --LiveCount;
    }
    if (I.hasDef())
      ++LiveCount;
    for (unsigned EI : G.succEdges(V)) {
      const DepEdge &E = G.edges()[EI];
      ReadyAt[E.To] = std::max(ReadyAt[E.To], Cycle + E.Latency);
      --PredsLeft[E.To];
    }
  }

  const Function &F;
  const BasicBlock &BB;
  const MachineModel &Machine;
  DependenceGraph G;
  unsigned RegLimit;
  IpsStats &Stats;

  std::vector<unsigned> Height;
  std::vector<unsigned> PredsLeft;
  std::vector<unsigned> ReadyAt;
  std::vector<bool> Issued;
  std::map<Reg, unsigned> RemainingUses;
  BitVector LiveOut;
  unsigned LiveCount = 0;
};

} // namespace

IpsStats pira::integratedPrepassSchedule(Function &F,
                                         const MachineModel &Machine,
                                         unsigned RegLimit) {
  PIRA_TIME_SCOPE("sched/ips");
  assert(!F.isAllocated() && "IPS runs on symbolic code");
  assert(RegLimit >= 1 && "register limit must be positive");
  IpsStats Stats;
  Liveness Live(F);
  for (unsigned B = 0, NB = F.numBlocks(); B != NB; ++B) {
    if (F.block(B).size() < 2)
      continue;
    IpsBlockScheduler Scheduler(F, B, Machine, Live, RegLimit, Stats);
    BlockSchedule S = Scheduler.run();
    std::vector<unsigned> Perm = reorderBlockBySchedule(F, B, S);
    for (unsigned Pos = 0; Pos != Perm.size(); ++Pos)
      if (Perm[Pos] != Pos)
        ++Stats.Moved;
  }
  NumIpsPressureDecisions += Stats.CsrDecisions;
  NumIpsMoves += Stats.Moved;
  return Stats;
}
