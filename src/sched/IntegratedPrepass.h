//===- sched/IntegratedPrepass.h - Goodman-Hsu IPS scheduler ----*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The integrated prepass scheduling of Goodman and Hsu ("Code
/// scheduling and register allocation in large basic blocks", ICS 1988)
/// — the paper's related work [10] and a natural comparator for the
/// combined framework. A list scheduler over symbolic code alternates
/// between two priority functions based on the number of live values it
/// would keep: below the register limit it schedules for the pipeline
/// (critical-path height, CSP); at or above the limit it schedules to
/// reduce register pressure (prefer instructions that kill more values
/// than they create, CSR).
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SCHED_INTEGRATEDPREPASS_H
#define PIRA_SCHED_INTEGRATEDPREPASS_H

namespace pira {

class Function;
class MachineModel;

/// Statistics of an IPS run.
struct IpsStats {
  unsigned CspDecisions = 0; ///< Picks made in pipeline mode.
  unsigned CsrDecisions = 0; ///< Picks made in pressure mode.
  unsigned Moved = 0;        ///< Instructions whose position changed.
};

/// Reorders every block of \p F (symbolic form) with the Goodman-Hsu
/// dual-mode list scheduler, switching to register-reducing mode when
/// the count of live values reaches \p RegLimit.
IpsStats integratedPrepassSchedule(Function &F, const MachineModel &Machine,
                                   unsigned RegLimit);

} // namespace pira

#endif // PIRA_SCHED_INTEGRATEDPREPASS_H
