//===- sched/ListScheduler.h - Resource-constrained scheduling -*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cycle-driven list scheduler in the Gibbons-Muchnick style the paper
/// cites: at each cycle, ready instructions (all predecessors issued and
/// latencies elapsed) compete for the machine's functional units and
/// issue slots, highest critical-path height first. It runs after
/// register allocation — on a dependence graph that reflects whatever
/// anti/output dependences the allocator introduced — which is exactly
/// where the paper's framework pays off.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SCHED_LISTSCHEDULER_H
#define PIRA_SCHED_LISTSCHEDULER_H

#include "sched/Schedule.h"

#include <vector>

namespace pira {

class DependenceGraph;
class Function;
class MachineModel;

/// Schedules block \p BlockIdx of \p F, whose dependence graph is \p G,
/// onto \p Machine.
BlockSchedule scheduleBlockFor(const Function &F, unsigned BlockIdx,
                               const DependenceGraph &G,
                               const MachineModel &Machine);

/// Schedules every block of \p F (building each block's dependence graph
/// from the function's current operands).
FunctionSchedule scheduleFunction(const Function &F,
                                  const MachineModel &Machine);

/// Physically reorders \p Block's instructions of \p F into schedule
/// order (by cycle, original position within a cycle) and returns the
/// permutation NewIndex[OldIndex]. Used by the schedule-first pipeline to
/// materialize its pre-pass ordering.
std::vector<unsigned> reorderBlockBySchedule(Function &F, unsigned Block,
                                             const BlockSchedule &S);

} // namespace pira

#endif // PIRA_SCHED_LISTSCHEDULER_H
