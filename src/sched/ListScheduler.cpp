//===- sched/ListScheduler.cpp - Resource-constrained scheduling ----------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "sched/ListScheduler.h"

#include "analysis/DependenceGraph.h"
#include "ir/Function.h"
#include "machine/MachineModel.h"
#include "sched/EPTimes.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <numeric>

using namespace pira;

PIRA_STAT(NumBlocksListScheduled, "Basic blocks list-scheduled");
PIRA_STAT(NumListScheduleCycles,
          "Static cycles across all list-scheduled blocks");

BlockSchedule pira::scheduleBlockFor(const Function &F, unsigned BlockIdx,
                                     const DependenceGraph &G,
                                     const MachineModel &Machine) {
  const BasicBlock &BB = F.block(BlockIdx);
  unsigned N = G.size();
  assert(N == BB.size() && "dependence graph does not match block");

  BlockSchedule Out;
  Out.CycleOf.assign(N, 0);
  if (N == 0)
    return Out;

  std::vector<unsigned> Height = computeHeights(G);
  std::vector<unsigned> PredsLeft(N, 0);
  for (unsigned V = 0; V != N; ++V)
    PredsLeft[V] = static_cast<unsigned>(G.predEdges(V).size());

  // ReadyAt[v]: earliest cycle v may issue given already-issued preds.
  std::vector<unsigned> ReadyAt(N, 0);
  std::vector<bool> Issued(N, false);
  unsigned Remaining = N;
  unsigned Cycle = 0;

  while (Remaining != 0) {
    unsigned SlotsLeft = Machine.issueWidth();
    std::array<unsigned, NumUnitKinds> UnitsLeft{};
    for (unsigned K = 0; K != NumUnitKinds; ++K)
      UnitsLeft[K] = Machine.units(static_cast<UnitKind>(K));

    // Issue greedily within the cycle; each issue can unlock zero-latency
    // successors in the same cycle, so loop until no candidate fits.
    bool IssuedAny = true;
    while (IssuedAny && SlotsLeft != 0) {
      IssuedAny = false;
      // Pick the ready candidate with the greatest height (ties: lowest
      // original index, preserving program order).
      unsigned Best = ~0u;
      for (unsigned V = 0; V != N; ++V) {
        if (Issued[V] || PredsLeft[V] != 0 || ReadyAt[V] > Cycle)
          continue;
        unsigned Kind = static_cast<unsigned>(BB.inst(V).unit());
        if (UnitsLeft[Kind] == 0)
          continue;
        if (Best == ~0u || Height[V] > Height[Best])
          Best = V;
      }
      if (Best == ~0u)
        break;

      Issued[Best] = true;
      Out.CycleOf[Best] = Cycle;
      --Remaining;
      --SlotsLeft;
      --UnitsLeft[static_cast<unsigned>(BB.inst(Best).unit())];
      IssuedAny = true;
      for (unsigned EI : G.succEdges(Best)) {
        const DepEdge &E = G.edges()[EI];
        ReadyAt[E.To] = std::max(ReadyAt[E.To], Cycle + E.Latency);
        --PredsLeft[E.To];
      }
    }
    ++Cycle;
  }
  Out.Makespan = Cycle;
  ++NumBlocksListScheduled;
  NumListScheduleCycles += Cycle;
  return Out;
}

FunctionSchedule pira::scheduleFunction(const Function &F,
                                        const MachineModel &Machine) {
  PIRA_TIME_SCOPE("sched/list");
  FunctionSchedule Out;
  Out.Blocks.reserve(F.numBlocks());
  for (unsigned B = 0, E = F.numBlocks(); B != E; ++B) {
    DependenceGraph G(F, B, Machine);
    Out.Blocks.push_back(scheduleBlockFor(F, B, G, Machine));
  }
  return Out;
}

std::vector<unsigned> pira::reorderBlockBySchedule(Function &F,
                                                   unsigned Block,
                                                   const BlockSchedule &S) {
  BasicBlock &BB = F.block(Block);
  unsigned N = BB.size();
  assert(S.CycleOf.size() == N && "schedule does not match block");

  std::vector<unsigned> Order(N);
  std::iota(Order.begin(), Order.end(), 0u);
  std::stable_sort(Order.begin(), Order.end(), [&](unsigned A, unsigned B2) {
    return S.CycleOf[A] < S.CycleOf[B2];
  });

  [[maybe_unused]] bool HadTerminator = BB.hasTerminator();
  std::vector<Instruction> NewInsts;
  NewInsts.reserve(N);
  std::vector<unsigned> NewIndex(N, 0);
  for (unsigned Pos = 0; Pos != N; ++Pos) {
    NewIndex[Order[Pos]] = Pos;
    NewInsts.push_back(BB.inst(Order[Pos]));
  }
  BB.instructions() = std::move(NewInsts);
  assert((!HadTerminator || BB.hasTerminator()) &&
         "reorder must keep the terminator last");
  return NewIndex;
}
