//===- sched/PreScheduler.h - EP-driven input reordering --------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The preliminary scheduling stage of the paper's Section 4 algorithm.
/// Because the interference graph depends on the sequential order of the
/// input code, the algorithm first improves that order: EP numbers are
/// computed from the schedule graph, nodes are visited by increasing EP,
/// instructions that exceed the machine's per-cycle capacity at an EP
/// value are postponed (their EP incremented and the increase propagated
/// along outgoing paths), and finally the block is rewritten in a linear
/// order consistent with the new EP partial order.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SCHED_PRESCHEDULER_H
#define PIRA_SCHED_PRESCHEDULER_H

namespace pira {

class Function;
class MachineModel;

/// Reorders every block of \p F into an EP-consistent order for
/// \p Machine. The function must still be in symbolic-register form.
/// Returns the number of instructions whose position changed.
unsigned preScheduleFunction(Function &F, const MachineModel &Machine);

} // namespace pira

#endif // PIRA_SCHED_PRESCHEDULER_H
