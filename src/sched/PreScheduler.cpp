//===- sched/PreScheduler.cpp - EP-driven input reordering ----------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "sched/PreScheduler.h"

#include "analysis/DependenceGraph.h"
#include "ir/Function.h"
#include "machine/MachineModel.h"
#include "sched/EPTimes.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <numeric>

using namespace pira;

PIRA_STAT(NumPreScheduleMoves,
          "Instructions repositioned by EP-driven pre-scheduling");

/// Postpones instructions that overflow machine capacity at their EP
/// value and propagates the delay; returns the adjusted EP numbers.
static std::vector<unsigned> adjustEP(const Function &F, unsigned BlockIdx,
                                      const DependenceGraph &G,
                                      const MachineModel &Machine) {
  const BasicBlock &BB = F.block(BlockIdx);
  unsigned N = G.size();
  std::vector<unsigned> EP = computeEP(G);
  std::vector<unsigned> Height = computeHeights(G);

  // Process EP levels smallest first. Levels can grow as members are
  // postponed, so re-scan until every level fits.
  unsigned Level = 0;
  unsigned MaxLevel = 0;
  for (unsigned V = 0; V != N; ++V)
    MaxLevel = std::max(MaxLevel, EP[V]);
  while (Level <= MaxLevel) {
    // Members of this level, most urgent (greatest height) first; ties in
    // original program order.
    std::vector<unsigned> Members;
    for (unsigned V = 0; V != N; ++V)
      if (EP[V] == Level)
        Members.push_back(V);
    std::stable_sort(Members.begin(), Members.end(),
                     [&](unsigned A, unsigned B) {
                       return Height[A] > Height[B];
                     });

    // Admit members while capacity lasts; postpone the rest.
    unsigned SlotsLeft = Machine.issueWidth();
    std::array<unsigned, NumUnitKinds> UnitsLeft{};
    for (unsigned K = 0; K != NumUnitKinds; ++K)
      UnitsLeft[K] = Machine.units(static_cast<UnitKind>(K));
    std::vector<unsigned> Postponed;
    for (unsigned V : Members) {
      unsigned Kind = static_cast<unsigned>(BB.inst(V).unit());
      if (SlotsLeft != 0 && UnitsLeft[Kind] != 0) {
        --SlotsLeft;
        --UnitsLeft[Kind];
      } else {
        Postponed.push_back(V);
      }
    }

    for (unsigned V : Postponed) {
      ++EP[V];
      MaxLevel = std::max(MaxLevel, EP[V]);
      // Propagate along outgoing paths: a successor may issue no earlier
      // than EP[V] + latency. One forward sweep suffices per bump because
      // indices are topologically ordered.
      for (unsigned U = V; U != N; ++U)
        for (unsigned EI : G.succEdges(U)) {
          const DepEdge &E = G.edges()[EI];
          if (EP[E.To] < EP[U] + E.Latency) {
            EP[E.To] = EP[U] + E.Latency;
            MaxLevel = std::max(MaxLevel, EP[E.To]);
          }
        }
    }
    ++Level;
  }
  return EP;
}

unsigned pira::preScheduleFunction(Function &F, const MachineModel &Machine) {
  PIRA_TIME_SCOPE("sched/prepass");
  assert(!F.isAllocated() && "pre-scheduling runs on symbolic code");
  unsigned Moved = 0;
  for (unsigned B = 0, NB = F.numBlocks(); B != NB; ++B) {
    BasicBlock &BB = F.block(B);
    unsigned N = BB.size();
    if (N < 2)
      continue;
    DependenceGraph G(F, B, Machine);
    std::vector<unsigned> EP = adjustEP(F, B, G, Machine);

    // Linear order consistent with the (adjusted) EP partial order; the
    // stable sort keeps program order inside one EP level, which respects
    // every zero-latency edge.
    std::vector<unsigned> Order(N);
    std::iota(Order.begin(), Order.end(), 0u);
    std::stable_sort(Order.begin(), Order.end(),
                     [&](unsigned A, unsigned C) { return EP[A] < EP[C]; });

    bool Identity = true;
    for (unsigned Pos = 0; Pos != N; ++Pos)
      if (Order[Pos] != Pos) {
        Identity = false;
        ++Moved;
      }
    if (Identity)
      continue;
    std::vector<Instruction> NewInsts;
    NewInsts.reserve(N);
    for (unsigned Pos = 0; Pos != N; ++Pos)
      NewInsts.push_back(BB.inst(Order[Pos]));
    BB.instructions() = std::move(NewInsts);
  }
  NumPreScheduleMoves += Moved;
  return Moved;
}
