//===- support/Rng.h - Deterministic random number generator ----*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny, fully deterministic xorshift64* generator. Every randomized
/// workload, property test, and sweep in this repository is seeded
/// explicitly so results reproduce bit-for-bit across runs and platforms.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SUPPORT_RNG_H
#define PIRA_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace pira {

/// Deterministic xorshift64* PRNG with convenience range helpers.
class Rng {
public:
  /// Seeds the generator; a zero seed is remapped to a fixed constant
  /// because xorshift has an all-zero fixed point.
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9E3779B97F4A7C15ull) {}

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1Dull;
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "empty range");
    return next() % Bound;
  }

  /// Returns a uniform value in the inclusive range [Lo, Hi].
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability \p Percent / 100.
  bool chancePercent(unsigned Percent) { return nextBelow(100) < Percent; }

private:
  uint64_t State;
};

} // namespace pira

#endif // PIRA_SUPPORT_RNG_H
