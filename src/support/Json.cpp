//===- support/Json.cpp - Minimal JSON value, writer, and parser ----------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <system_error>

#if !(defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L)
#include <clocale>
#include <cstdlib>
#endif

using namespace pira;
using namespace pira::json;

// Number round-trips must not depend on the global C locale: under a
// comma-decimal locale (de_DE.UTF-8, ...) snprintf("%.17g") writes
// "3,14" — invalid JSON that the parser then rejects — and std::stod
// refuses the '.' spelling. std::to_chars / std::from_chars are
// locale-independent by definition, and to_chars emits the *shortest*
// string that parses back to the same double. Toolchains without
// floating-point to_chars (pre-GCC-11 libstdc++) fall back to the old
// printf/strtod pair with the locale's decimal point swapped by hand.

namespace {

/// Writes \p D into \p Buf (shortest round-trip form) and returns Buf.
const char *formatDouble(double D, char (&Buf)[40]) {
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
  auto [Ptr, Ec] = std::to_chars(Buf, Buf + sizeof(Buf) - 1, D);
  (void)Ec; // 39 chars always fit the shortest form of a double
  *Ptr = '\0';
#else
  std::snprintf(Buf, sizeof(Buf), "%.17g", D);
  const char *Point = std::localeconv()->decimal_point;
  for (char *P = Buf; *P; ++P)
    if (*P == *Point)
      *P = '.';
#endif
  return Buf;
}

/// Parses the JSON number token \p Token as a double; false on overflow
/// or (should-not-happen after tokenization) malformed input.
bool parseDoubleToken(std::string_view Token, double &Out) {
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
  auto [Ptr, Ec] = std::from_chars(Token.data(), Token.data() + Token.size(),
                                   Out);
  return Ec == std::errc() && Ptr == Token.data() + Token.size();
#else
  // strtod honors the locale's decimal point, so present the token in
  // that spelling.
  std::string Localized(Token);
  const char *Point = std::localeconv()->decimal_point;
  for (char &C : Localized)
    if (C == '.')
      C = *Point;
  errno = 0;
  char *End = nullptr;
  Out = std::strtod(Localized.c_str(), &End);
  return errno == 0 && End == Localized.c_str() + Localized.size();
#endif
}

} // namespace

void json::writeEscaped(std::ostream &OS, const std::string &S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\r':
      OS << "\\r";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}

static void writeIndent(std::ostream &OS, int Indent) {
  for (int I = 0; I != Indent; ++I)
    OS << "  ";
}

void Value::write(std::ostream &OS, int Indent) const {
  const bool Pretty = Indent >= 0;
  switch (K) {
  case Kind::Null:
    OS << "null";
    return;
  case Kind::Bool:
    OS << (BoolVal ? "true" : "false");
    return;
  case Kind::Int:
    OS << IntVal;
    return;
  case Kind::Double:
    if (std::isfinite(DoubleVal)) {
      char Buf[40];
      OS << formatDouble(DoubleVal, Buf);
    } else {
      OS << "null"; // JSON has no Inf/NaN; degrade rather than corrupt
    }
    return;
  case Kind::String:
    writeEscaped(OS, StringVal);
    return;
  case Kind::Array: {
    if (Elements.empty()) {
      OS << "[]";
      return;
    }
    OS << '[';
    for (size_t I = 0; I != Elements.size(); ++I) {
      if (I != 0)
        OS << ',';
      if (Pretty) {
        OS << '\n';
        writeIndent(OS, Indent + 1);
      }
      Elements[I].write(OS, Pretty ? Indent + 1 : -1);
    }
    if (Pretty) {
      OS << '\n';
      writeIndent(OS, Indent);
    }
    OS << ']';
    return;
  }
  case Kind::Object: {
    if (Members.empty()) {
      OS << "{}";
      return;
    }
    OS << '{';
    for (size_t I = 0; I != Members.size(); ++I) {
      if (I != 0)
        OS << ',';
      if (Pretty) {
        OS << '\n';
        writeIndent(OS, Indent + 1);
      }
      writeEscaped(OS, Members[I].first);
      OS << (Pretty ? ": " : ":");
      Members[I].second.write(OS, Pretty ? Indent + 1 : -1);
    }
    if (Pretty) {
      OS << '\n';
      writeIndent(OS, Indent);
    }
    OS << '}';
    return;
  }
  }
}

std::string Value::toString(int Indent) const {
  std::ostringstream OS;
  write(OS, Indent);
  return OS.str();
}

namespace {

/// Strict recursive-descent parser over the whole input buffer.
class Parser {
public:
  Parser(const std::string &Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool run(Value &Out) {
    skipWhitespace();
    if (!parseValue(Out, /*Depth=*/0))
      return false;
    skipWhitespace();
    if (Pos != Text.size())
      return fail("trailing characters after top-level value");
    return true;
  }

private:
  bool fail(const std::string &Message) {
    Error = Message + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWhitespace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C, const char *What) {
    if (Pos >= Text.size() || Text[Pos] != C)
      return fail(std::string("expected ") + What);
    ++Pos;
    return true;
  }

  bool literal(const char *Word) {
    size_t Len = std::string(Word).size();
    if (Text.compare(Pos, Len, Word) != 0)
      return fail(std::string("expected '") + Word + "'");
    Pos += Len;
    return true;
  }

  bool parseValue(Value &Out, unsigned Depth) {
    if (Depth > 200)
      return fail("nesting too deep");
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case 'n':
      if (!literal("null"))
        return false;
      Out = Value();
      return true;
    case 't':
      if (!literal("true"))
        return false;
      Out = Value(true);
      return true;
    case 'f':
      if (!literal("false"))
        return false;
      Out = Value(false);
      return true;
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Value(std::move(S));
      return true;
    }
    case '[':
      return parseArray(Out, Depth);
    case '{':
      return parseObject(Out, Depth);
    default:
      return parseNumber(Out);
    }
  }

  bool parseString(std::string &Out) {
    if (!consume('"', "'\"'"))
      return false;
    Out.clear();
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad hex digit in \\u escape");
        }
        // UTF-8 encode the BMP code point (surrogate pairs are not
        // produced by our writer; decode them permissively as-is).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape character");
      }
    }
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() && std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    bool IsDouble = false;
    if (Pos < Text.size() && Text[Pos] == '.') {
      IsDouble = true;
      ++Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      IsDouble = true;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    std::string_view Token(Text.data() + Start, Pos - Start);
    if (Token.empty() || Token == "-")
      return fail("malformed number");
    if (IsDouble) {
      double D = 0.0;
      if (!parseDoubleToken(Token, D))
        return fail("number out of range");
      Out = Value(D);
    } else {
      int64_t I = 0;
      auto [Ptr, Ec] =
          std::from_chars(Token.data(), Token.data() + Token.size(), I);
      if (Ec != std::errc() || Ptr != Token.data() + Token.size())
        return fail("number out of range");
      Out = Value(I);
    }
    return true;
  }

  bool parseArray(Value &Out, unsigned Depth) {
    ++Pos; // '['
    Out = Value::array();
    skipWhitespace();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      Value Element;
      skipWhitespace();
      if (!parseValue(Element, Depth + 1))
        return false;
      Out.push(std::move(Element));
      skipWhitespace();
      if (Pos >= Text.size())
        return fail("unterminated array");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      return consume(']', "']' or ','");
    }
  }

  bool parseObject(Value &Out, unsigned Depth) {
    ++Pos; // '{'
    Out = Value::object();
    skipWhitespace();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWhitespace();
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWhitespace();
      if (!consume(':', "':'"))
        return false;
      skipWhitespace();
      Value Member;
      if (!parseValue(Member, Depth + 1))
        return false;
      Out.set(Key, std::move(Member));
      skipWhitespace();
      if (Pos >= Text.size())
        return fail("unterminated object");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      return consume('}', "'}' or ','");
    }
  }

  const std::string &Text;
  std::string &Error;
  size_t Pos = 0;
};

} // namespace

bool json::parse(const std::string &Text, Value &Out, std::string &Error) {
  return Parser(Text, Error).run(Out);
}
