//===- support/Io.h - Retrying descriptor I/O helpers -----------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one place short reads, short writes, and EINTR are handled. Raw
/// ::read/::write may transfer fewer bytes than asked (pipes, sockets,
/// signal interruption), and sprinkling ad-hoc retry loops over every
/// caller is how torn journal records and half-written frames happen.
/// pipeline/Journal, support/Subprocess, and the service framing layer
/// (service/Framing) all route their descriptor I/O through these
/// helpers so the retry discipline cannot drift between them.
///
/// All helpers expect blocking descriptors. Timeout-aware service I/O
/// combines them with poll() (see service/Framing); SO_SNDTIMEO-armed
/// sockets surface their expiry here as EAGAIN, which the write loop
/// reports as a failure instead of spinning.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SUPPORT_IO_H
#define PIRA_SUPPORT_IO_H

#include <cstddef>
#include <sys/types.h>

namespace pira {
namespace io {

/// Reads exactly \p Size bytes into \p Buf, retrying EINTR and short
/// reads. Returns the number of bytes read: \p Size on success, less on
/// end-of-file, and -1 on a real error (errno preserved). A timeout on
/// an SO_RCVTIMEO-armed descriptor surfaces as -1/EAGAIN.
ssize_t readFull(int Fd, void *Buf, size_t Size);

/// Writes all \p Size bytes of \p Buf, retrying EINTR and short writes.
/// Returns true when everything landed; false on a real error (errno
/// preserved — EPIPE/ECONNRESET mean the peer is gone, EAGAIN means an
/// armed send timeout expired).
bool writeFull(int Fd, const void *Buf, size_t Size);

/// True when \p Err is one of the "peer disappeared" errnos (EPIPE,
/// ECONNRESET, ECONNABORTED, ENOTCONN). Report sinks and service
/// sockets treat these as structured diagnostics, never process death.
bool isDisconnectError(int Err);

/// Ignores SIGPIPE process-wide, once. A peer (pipe reader, socket
/// client) that goes away must surface as an EPIPE from the write that
/// noticed — a structured, attributable failure — not as an
/// asynchronous process kill. Safe to call from any thread, any number
/// of times.
void ignoreSigpipe();

} // namespace io
} // namespace pira

#endif // PIRA_SUPPORT_IO_H
