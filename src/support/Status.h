//===- support/Status.h - Structured diagnostics ----------------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured-diagnostic currency of the fault-isolated pipeline:
/// every failure a phase can produce is a Status — an error code, the
/// phase that raised it ("alloc/pinter", "verify/final", ...), a human
/// message, and a context chain ("function @dot", "rung spill-all") that
/// callers append to as the error travels outward. Status replaces the
/// ad-hoc error strings, asserts-on-input, and std::exit calls that used
/// to let one bad function take down a whole batch.
///
/// Expected<T> carries either a value or a Status, for factory-style
/// APIs (parseFunctionEx, strategyFromName) where "no result" must come
/// with a reason.
///
/// Both types are plain values — no exceptions, no allocation beyond the
/// strings — and serialize deterministically (toJson carries no clocks,
/// addresses, or thread ids), so batch stats reports stay byte-identical
/// across worker counts even when they are full of failures.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SUPPORT_STATUS_H
#define PIRA_SUPPORT_STATUS_H

#include "support/Json.h"

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pira {

/// Failure classes of the compilation pipeline. Codes classify *what*
/// went wrong; the Status phase says *where*.
enum class ErrorCode {
  Ok = 0,
  InvalidArgument,   ///< Bad option, unknown strategy/machine name.
  ParseError,        ///< Textual IR did not parse.
  VerifyError,       ///< IR failed structural verification.
  AllocFailure,      ///< An allocator did not converge.
  SimFailure,        ///< Interpreter or simulator did not complete.
  SemanticsDiverged, ///< Compiled code disagrees with the reference.
  ResourceExhausted, ///< Instruction/block budget exceeded.
  DeadlineExceeded,  ///< Per-task watchdog deadline passed.
  FaultInjected,     ///< A PIRA_FAULT site fired.
  ChildCrashed,      ///< Sandboxed worker died on a crash signal.
  ChildKilled,       ///< Sandboxed worker killed (OOM kill, rlimit, external).
  ChildTimeout,      ///< Sandboxed worker exceeded its wall/CPU budget.
  SearchExhausted,   ///< Exact search gave up (outside scope or over its
                     ///< node budget) without proving anything; unlike
                     ///< ResourceExhausted this is *not* fatal to the
                     ///< degradation ladder — a heuristic rung may still
                     ///< succeed where exhaustive search cannot finish.
  ServerOverloaded,  ///< The compile service shed the request (queue
                     ///< full, per-client budget, or draining); safe to
                     ///< retry with backoff.
  ProtocolError,     ///< A service frame or document violated the wire
                     ///< protocol (malformed, oversized, wrong schema).
  Internal,          ///< Unexpected exception or invariant violation.
};

/// Stable lower-case name of \p Code ("alloc-failure", ...). Unknown
/// values map to "internal" rather than asserting: codes may arrive from
/// serialized reports.
const char *errorCodeName(ErrorCode Code);

/// Inverse of errorCodeName, for diagnostics arriving from serialized
/// worker results and journals. Unknown names map to Internal.
ErrorCode errorCodeFromName(std::string_view Name);

/// One structured diagnostic. Default-constructed Status is success.
class Status {
public:
  Status() = default;

  /// Builds a failure diagnostic. \p Phase names the pipeline phase in
  /// telemetry-scope style ("alloc/chaitin"); \p Message is free text.
  static Status error(ErrorCode Code, std::string Phase,
                      std::string Message) {
    Status S;
    S.ErrCode = Code;
    S.PhaseName = std::move(Phase);
    S.Msg = std::move(Message);
    return S;
  }

  /// True on success.
  bool ok() const { return ErrCode == ErrorCode::Ok; }

  ErrorCode code() const { return ErrCode; }
  const std::string &phase() const { return PhaseName; }
  const std::string &message() const { return Msg; }

  /// Outer-to-inner context frames, most recently added last.
  const std::vector<std::string> &context() const { return Context; }

  /// Appends a context frame ("function @foo") as the error propagates
  /// outward; no-op on success so call sites need not branch.
  Status &addContext(std::string Frame) {
    if (!ok())
      Context.push_back(std::move(Frame));
    return *this;
  }

  /// "phase: message [frame; frame]" — or "ok".
  std::string toString() const;

  /// Deterministic serialization: {"code", "phase", "message",
  /// "context": [...]}. Success serializes as {"code": "ok"}.
  json::Value toJson() const;

  /// Inverse of toJson, for diagnostics crossing the worker-protocol /
  /// journal boundary. Lenient: missing members default to empty and an
  /// unknown code decodes as Internal, so a record written by a newer
  /// build still reads as *a* failure rather than not parsing.
  static Status fromJson(const json::Value &V);

private:
  ErrorCode ErrCode = ErrorCode::Ok;
  std::string PhaseName;
  std::string Msg;
  std::vector<std::string> Context;
};

/// A value or the Status explaining its absence. The Status of a
/// value-holding Expected is Ok; constructing from a success Status is a
/// programming error (there would be no value to return).
template <typename T> class Expected {
public:
  Expected(T Value) : Val(std::move(Value)) {}
  Expected(Status S) : Diag(std::move(S)) {
    assert(!Diag.ok() && "Expected built from a success Status");
  }

  /// True when a value is present.
  bool ok() const { return Diag.ok(); }
  explicit operator bool() const { return ok(); }

  /// The diagnostic (Ok when a value is present).
  const Status &status() const { return Diag; }
  Status &status() { return Diag; }

  T &operator*() {
    assert(ok() && "dereferencing an errored Expected");
    return Val;
  }
  const T &operator*() const {
    assert(ok() && "dereferencing an errored Expected");
    return Val;
  }
  T *operator->() { return &operator*(); }
  const T *operator->() const { return &operator*(); }

  /// Moves the value out (value must be present).
  T take() {
    assert(ok() && "taking from an errored Expected");
    return std::move(Val);
  }

private:
  T Val{};
  Status Diag;
};

} // namespace pira

#endif // PIRA_SUPPORT_STATUS_H
