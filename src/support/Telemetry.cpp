//===- support/Telemetry.cpp - Phase timers and counter registry ----------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include <algorithm>
#include <bit>
#include <charconv>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <mutex>
#include <set>

#include <unistd.h>

using namespace pira;
using namespace pira::telemetry;

namespace {

std::atomic<bool> Enabled{false};

/// Registry + event log. Function-local statics so instrumented passes
/// in other translation units can register counters during static
/// initialization without ordering hazards.
struct GlobalState {
  std::mutex Mutex;
  std::vector<Counter *> Counters;
  std::vector<Histogram *> Histograms;
  std::vector<TimedEvent> Events;
  uint32_t NextThreadId = 0;
};

GlobalState &state() {
  static GlobalState S;
  return S;
}

/// Per-thread stack of active scope labels; Path is the joined form so
/// scope entry is O(label) and exit copies one string.
struct ThreadStack {
  std::vector<const char *> Labels;
  std::string Path;
  uint32_t Id;

  ThreadStack() {
    GlobalState &S = state();
    std::lock_guard<std::mutex> Lock(S.Mutex);
    Id = S.NextThreadId++;
  }
};

ThreadStack &threadStack() {
  thread_local ThreadStack TS;
  return TS;
}

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Shortest round-trip decimal form, locale-independent (the same
/// contract the JSON writer keeps).
void writeDouble(std::ostream &OS, double V) {
  char Buf[64];
  auto [Ptr, Ec] = std::to_chars(Buf, Buf + sizeof(Buf), V);
  (void)Ec;
  OS.write(Buf, Ptr - Buf);
}

} // namespace

bool telemetry::enabled() { return Enabled.load(std::memory_order_relaxed); }

void telemetry::setEnabled(bool On) {
  Enabled.store(On, std::memory_order_relaxed);
}

void telemetry::reset() {
  GlobalState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Events.clear();
  for (Counter *C : S.Counters)
    C->Value.store(0, std::memory_order_relaxed);
  for (Histogram *H : S.Histograms) {
    for (auto &B : H->Buckets)
      B.store(0, std::memory_order_relaxed);
    H->Count.store(0, std::memory_order_relaxed);
    H->Sum.store(0, std::memory_order_relaxed);
    H->Max.store(0, std::memory_order_relaxed);
  }
}

uint64_t telemetry::processId() {
  static const uint64_t Pid = static_cast<uint64_t>(::getpid());
  return Pid;
}

uint64_t telemetry::monotonicNowNs() { return nowNs(); }

//===----------------------------------------------------------------------===//
// Counters
//===----------------------------------------------------------------------===//

Counter::Counter(const char *Name, const char *Description)
    : Name(Name), Description(Description) {
  GlobalState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Counters.push_back(this);
}

const std::vector<Counter *> &telemetry::counters() {
  return state().Counters;
}

bool telemetry::addToCounter(const std::string &Name, uint64_t Delta) {
  for (Counter *C : state().Counters) {
    if (Name == C->name()) {
      *C += Delta;
      return true;
    }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Histograms
//===----------------------------------------------------------------------===//

Histogram::Histogram(const char *Name, const char *Description)
    : Name(Name), Description(Description) {
  GlobalState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Histograms.push_back(this);
}

unsigned Histogram::bucketFor(uint64_t V) {
  if (V == 0)
    return 0;
  unsigned Width = static_cast<unsigned>(std::bit_width(V));
  return Width < NumBuckets ? Width : NumBuckets - 1;
}

uint64_t Histogram::bucketUpperBound(unsigned I) {
  if (I == 0)
    return 0;
  if (I >= NumBuckets - 1)
    return UINT64_MAX;
  return (uint64_t{1} << I) - 1;
}

uint64_t Histogram::percentileUpperBound(double P) const {
  // One snapshot of the buckets, with the total derived from that same
  // snapshot. Count and the buckets are distinct relaxed atomics, so a
  // total read separately (as this used to) can exceed the bucket mass
  // the rank walk then observes — e.g. around reset() or a foreign
  // merge — stranding the rank past every bucket and answering with the
  // last bucket's UINT64_MAX bound for a histogram holding nothing.
  std::array<uint64_t, NumBuckets> Snap;
  uint64_t N = 0;
  for (unsigned I = 0; I < NumBuckets; ++I) {
    Snap[I] = bucketCount(I);
    N += Snap[I];
  }
  if (N == 0)
    return 0;
  // Rank of the percentile observation, 1-based, clamped into [1, N].
  uint64_t Rank = static_cast<uint64_t>(std::ceil(static_cast<double>(N) * P /
                                                  100.0));
  Rank = std::min(std::max<uint64_t>(Rank, 1), N);
  uint64_t Seen = 0;
  for (unsigned I = 0; I < NumBuckets; ++I) {
    Seen += Snap[I];
    if (Seen >= Rank)
      return bucketUpperBound(I);
  }
  return bucketUpperBound(NumBuckets - 1); // unreachable: Rank <= N
}

const std::vector<Histogram *> &telemetry::histograms() {
  return state().Histograms;
}

Histogram *telemetry::findHistogram(const std::string &Name) {
  for (Histogram *H : state().Histograms)
    if (Name == H->name())
      return H;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Phase timers
//===----------------------------------------------------------------------===//

TimeScope::TimeScope(const char *Label)
    : Active(Enabled.load(std::memory_order_relaxed)), Label(Label) {
  if (!Active)
    return;
  ThreadStack &TS = threadStack();
  Depth = static_cast<uint32_t>(TS.Labels.size());
  TS.Labels.push_back(Label);
  if (!TS.Path.empty())
    TS.Path += '/';
  TS.Path += Label;
  Path = TS.Path;
  StartNs = nowNs();
}

TimeScope::~TimeScope() {
  if (!Active)
    return;
  uint64_t End = nowNs();
  ThreadStack &TS = threadStack();
  // Pop our label (and the separator) off the thread path.
  if (!TS.Labels.empty()) {
    size_t LabelLen = std::char_traits<char>::length(TS.Labels.back());
    size_t Cut = TS.Path.size() >= LabelLen ? TS.Path.size() - LabelLen : 0;
    if (Cut > 0)
      --Cut; // the '/' separator
    TS.Path.resize(Cut);
    TS.Labels.pop_back();
  }
  GlobalState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Events.push_back({std::move(Path), Label, StartNs, End - StartNs, TS.Id,
                      Depth, processId()});
}

std::vector<TimedEvent> telemetry::events() {
  GlobalState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  return S.Events;
}

void telemetry::recordForeignEvents(std::vector<TimedEvent> Events) {
  if (!enabled() || Events.empty())
    return;
  GlobalState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  for (TimedEvent &E : Events)
    S.Events.push_back(std::move(E));
}

std::vector<TimerAggregate> telemetry::timerAggregates() {
  std::map<std::string, TimerAggregate> ByPath;
  for (const TimedEvent &E : events()) {
    TimerAggregate &A = ByPath[E.Path];
    A.Path = E.Path;
    ++A.Calls;
    A.TotalNs += E.DurationNs;
  }
  std::vector<TimerAggregate> Out;
  Out.reserve(ByPath.size());
  for (auto &[Path, A] : ByPath)
    Out.push_back(std::move(A));
  std::sort(Out.begin(), Out.end(),
            [](const TimerAggregate &A, const TimerAggregate &B) {
              return A.TotalNs != B.TotalNs ? A.TotalNs > B.TotalNs
                                            : A.Path < B.Path;
            });
  return Out;
}

void telemetry::printTimerReport(std::ostream &OS) {
  std::vector<TimerAggregate> Aggs = timerAggregates();
  size_t PathWidth = std::string("path").size();
  for (const TimerAggregate &A : Aggs)
    PathWidth = std::max(PathWidth, A.Path.size());
  OS << "=== pass timing ===\n"
     << std::left << std::setw(static_cast<int>(PathWidth) + 2) << "path"
     << std::right << std::setw(8) << "calls" << std::setw(12) << "total ms"
     << '\n';
  for (const TimerAggregate &A : Aggs) {
    OS << std::left << std::setw(static_cast<int>(PathWidth) + 2) << A.Path
       << std::right << std::setw(8) << A.Calls << std::setw(12) << std::fixed
       << std::setprecision(3) << static_cast<double>(A.TotalNs) / 1e6
       << '\n';
  }
}

//===----------------------------------------------------------------------===//
// Cross-process snapshots
//===----------------------------------------------------------------------===//

json::Value telemetry::snapshotToJson() {
  json::Value Doc = json::Value::object();
  Doc.set("pid", static_cast<int64_t>(processId()));

  json::Value Counters = json::Value::object();
  for (const Counter *C : counters())
    if (uint64_t V = C->value())
      Counters.set(C->name(), static_cast<int64_t>(V));
  Doc.set("counters", std::move(Counters));

  json::Value Hists = json::Value::object();
  for (const Histogram *H : histograms()) {
    if (H->count() == 0)
      continue;
    json::Value HV = json::Value::object();
    HV.set("count", static_cast<int64_t>(H->count()));
    HV.set("sum_ns", static_cast<int64_t>(H->sum()));
    HV.set("max_ns", static_cast<int64_t>(H->max()));
    json::Value Buckets = json::Value::array();
    for (unsigned I = 0; I < Histogram::NumBuckets; ++I) {
      if (uint64_t N = H->bucketCount(I)) {
        json::Value Pair = json::Value::array();
        Pair.push(static_cast<int64_t>(I));
        Pair.push(static_cast<int64_t>(N));
        Buckets.push(std::move(Pair));
      }
    }
    HV.set("buckets", std::move(Buckets));
    Hists.set(H->name(), std::move(HV));
  }
  Doc.set("histograms", std::move(Hists));

  json::Value Evs = json::Value::array();
  for (const TimedEvent &E : events()) {
    json::Value EV = json::Value::object();
    EV.set("path", E.Path);
    EV.set("label", E.Label);
    EV.set("start_ns", static_cast<int64_t>(E.StartNs));
    EV.set("dur_ns", static_cast<int64_t>(E.DurationNs));
    EV.set("tid", static_cast<int64_t>(E.ThreadId));
    EV.set("depth", static_cast<int64_t>(E.Depth));
    Evs.push(std::move(EV));
  }
  Doc.set("events", std::move(Evs));
  return Doc;
}

void telemetry::mergeSnapshot(const json::Value &Snapshot,
                              uint64_t RebaseStartNs) {
  if (!Snapshot.isObject())
    return;

  if (const json::Value *Counters = Snapshot.find("counters");
      Counters && Counters->isObject())
    for (const auto &[Name, V] : Counters->members())
      if (V.isInt() && V.asInt() > 0)
        addToCounter(Name, static_cast<uint64_t>(V.asInt()));

  if (const json::Value *Hists = Snapshot.find("histograms");
      Hists && Hists->isObject()) {
    for (const auto &[Name, HV] : Hists->members()) {
      Histogram *H = findHistogram(Name);
      if (!H || !HV.isObject())
        continue;
      if (const json::Value *Buckets = HV.find("buckets");
          Buckets && Buckets->isArray())
        for (const json::Value &Pair : Buckets->elements())
          if (Pair.isArray() && Pair.elements().size() == 2 &&
              Pair.elements()[0].isInt() && Pair.elements()[1].isInt())
            H->addBucket(static_cast<unsigned>(Pair.elements()[0].asInt()),
                         static_cast<uint64_t>(Pair.elements()[1].asInt()));
      if (const json::Value *S = HV.find("sum_ns"); S && S->isInt())
        H->addSum(static_cast<uint64_t>(S->asInt()));
      if (const json::Value *M = HV.find("max_ns"); M && M->isInt())
        H->updateMax(static_cast<uint64_t>(M->asInt()));
    }
  }

  const json::Value *Evs = Snapshot.find("events");
  if (!enabled() || !Evs || !Evs->isArray() || Evs->elements().empty())
    return;

  uint64_t Pid = 0;
  if (const json::Value *P = Snapshot.find("pid"); P && P->isInt())
    Pid = static_cast<uint64_t>(P->asInt());

  // The child's monotonic clock shares no epoch with ours; shift its
  // timeline so its earliest event lands at RebaseStartNs (typically the
  // instant we spawned it). Unsigned wraparound makes the shift exact in
  // both directions.
  uint64_t MinStart = UINT64_MAX;
  for (const json::Value &EV : Evs->elements())
    if (const json::Value *S = EV.find("start_ns"); S && S->isInt())
      MinStart = std::min(MinStart, static_cast<uint64_t>(S->asInt()));
  if (MinStart == UINT64_MAX)
    return;
  uint64_t Offset = RebaseStartNs - MinStart;

  std::vector<TimedEvent> Foreign;
  for (const json::Value &EV : Evs->elements()) {
    if (!EV.isObject())
      continue;
    TimedEvent E;
    if (const json::Value *V = EV.find("path"); V && V->isString())
      E.Path = V->asString();
    if (const json::Value *V = EV.find("label"); V && V->isString())
      E.Label = V->asString();
    const json::Value *Start = EV.find("start_ns");
    if (!Start || !Start->isInt())
      continue;
    E.StartNs = static_cast<uint64_t>(Start->asInt()) + Offset;
    if (const json::Value *V = EV.find("dur_ns"); V && V->isInt())
      E.DurationNs = static_cast<uint64_t>(V->asInt());
    if (const json::Value *V = EV.find("tid"); V && V->isInt())
      E.ThreadId = static_cast<uint32_t>(V->asInt());
    if (const json::Value *V = EV.find("depth"); V && V->isInt())
      E.Depth = static_cast<uint32_t>(V->asInt());
    E.Pid = Pid;
    Foreign.push_back(std::move(E));
  }
  recordForeignEvents(std::move(Foreign));
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

void telemetry::writeChromeTrace(std::ostream &OS) {
  std::vector<TimedEvent> Evs = events();

  json::Value Root = json::Value::object();
  json::Value Trace = json::Value::array();

  // Metadata first: name every process and thread that appears so merged
  // parent+child traces read as labeled tracks, not bare pid numbers.
  std::set<uint64_t> Pids;
  std::set<std::pair<uint64_t, uint32_t>> Threads;
  for (const TimedEvent &E : Evs) {
    Pids.insert(E.Pid);
    Threads.insert({E.Pid, E.ThreadId});
  }
  for (uint64_t Pid : Pids) {
    json::Value Ev = json::Value::object();
    Ev.set("name", "process_name");
    Ev.set("ph", "M");
    Ev.set("pid", static_cast<int64_t>(Pid));
    Ev.set("tid", 0);
    json::Value Args = json::Value::object();
    Args.set("name", Pid == processId() ? "pirac" : "pirac --worker");
    Ev.set("args", std::move(Args));
    Trace.push(std::move(Ev));
  }
  for (const auto &[Pid, Tid] : Threads) {
    json::Value Ev = json::Value::object();
    Ev.set("name", "thread_name");
    Ev.set("ph", "M");
    Ev.set("pid", static_cast<int64_t>(Pid));
    Ev.set("tid", static_cast<int64_t>(Tid));
    json::Value Args = json::Value::object();
    Args.set("name", Tid == 0 ? std::string("main")
                              : "thread-" + std::to_string(Tid));
    Ev.set("args", std::move(Args));
    Trace.push(std::move(Ev));
  }

  for (const TimedEvent &E : Evs) {
    json::Value Ev = json::Value::object();
    // The event name is the scope's own label so chrome://tracing
    // groups repeated phases; the full hierarchical path rides in args.
    Ev.set("name", E.Label);
    Ev.set("cat", "pira");
    Ev.set("ph", "X");
    Ev.set("ts", static_cast<double>(E.StartNs) / 1e3); // microseconds
    Ev.set("dur", static_cast<double>(E.DurationNs) / 1e3);
    Ev.set("pid", static_cast<int64_t>(E.Pid));
    Ev.set("tid", static_cast<int64_t>(E.ThreadId));
    json::Value Args = json::Value::object();
    Args.set("path", E.Path);
    Args.set("depth", static_cast<int64_t>(E.Depth));
    Ev.set("args", std::move(Args));
    Trace.push(std::move(Ev));
  }
  Root.set("traceEvents", std::move(Trace));
  Root.set("displayTimeUnit", "ms");
  Root.write(OS, 0);
  OS << '\n';
}

bool telemetry::writeChromeTraceFile(const std::string &FilePath,
                                     std::string &Error) {
  if (FilePath == "-") {
    writeChromeTrace(std::cout);
    std::cout.flush();
    if (!std::cout) {
      Error = "error while writing trace to stdout";
      return false;
    }
    return true;
  }
  std::ofstream Out(FilePath);
  if (!Out) {
    Error = "cannot open '" + FilePath + "' for writing";
    return false;
  }
  writeChromeTrace(Out);
  if (!Out) {
    Error = "error while writing '" + FilePath + "'";
    return false;
  }
  return true;
}

void telemetry::writePrometheus(std::ostream &OS) {
  for (const Counter *C : counters()) {
    std::string Metric = std::string("pira_") + C->name() + "_total";
    OS << "# HELP " << Metric << ' ' << C->description() << '\n';
    OS << "# TYPE " << Metric << " counter\n";
    OS << Metric << ' ' << C->value() << '\n';
  }
  for (const Histogram *H : histograms()) {
    std::string Metric = std::string("pira_") + H->name() + "_seconds";
    OS << "# HELP " << Metric << ' ' << H->description() << '\n';
    OS << "# TYPE " << Metric << " histogram\n";
    // Cumulative buckets up to the highest populated boundary; the
    // boundaries are the histogram's inclusive log2 upper bounds,
    // converted from ns to seconds.
    unsigned MaxBucket = 0;
    for (unsigned I = 0; I < Histogram::NumBuckets; ++I)
      if (H->bucketCount(I))
        MaxBucket = I;
    uint64_t Cumulative = 0;
    for (unsigned I = 0; I <= MaxBucket && I < Histogram::NumBuckets - 1;
         ++I) {
      Cumulative += H->bucketCount(I);
      OS << Metric << "_bucket{le=\"";
      writeDouble(OS,
                  static_cast<double>(Histogram::bucketUpperBound(I)) / 1e9);
      OS << "\"} " << Cumulative << '\n';
    }
    OS << Metric << "_bucket{le=\"+Inf\"} " << H->count() << '\n';
    OS << Metric << "_sum ";
    writeDouble(OS, static_cast<double>(H->sum()) / 1e9);
    OS << '\n';
    OS << Metric << "_count " << H->count() << '\n';
  }
  OS << "# EOF\n";
}

bool telemetry::writeMetricsFile(const std::string &FilePath,
                                 std::string &Error) {
  if (FilePath == "-") {
    writePrometheus(std::cout);
    std::cout.flush();
    if (!std::cout) {
      Error = "error while writing metrics to stdout";
      return false;
    }
    return true;
  }
  std::ofstream Out(FilePath);
  if (!Out) {
    Error = "cannot open '" + FilePath + "' for writing";
    return false;
  }
  writePrometheus(Out);
  if (!Out) {
    Error = "error while writing '" + FilePath + "'";
    return false;
  }
  return true;
}
