//===- support/Telemetry.cpp - Phase timers and counter registry ----------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include "support/Json.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <map>
#include <mutex>

using namespace pira;
using namespace pira::telemetry;

namespace {

std::atomic<bool> Enabled{false};

/// Registry + event log. Function-local statics so instrumented passes
/// in other translation units can register counters during static
/// initialization without ordering hazards.
struct GlobalState {
  std::mutex Mutex;
  std::vector<Counter *> Counters;
  std::vector<TimedEvent> Events;
  uint32_t NextThreadId = 0;
};

GlobalState &state() {
  static GlobalState S;
  return S;
}

/// Per-thread stack of active scope labels; Path is the joined form so
/// scope entry is O(label) and exit copies one string.
struct ThreadStack {
  std::vector<const char *> Labels;
  std::string Path;
  uint32_t Id;

  ThreadStack() {
    GlobalState &S = state();
    std::lock_guard<std::mutex> Lock(S.Mutex);
    Id = S.NextThreadId++;
  }
};

ThreadStack &threadStack() {
  thread_local ThreadStack TS;
  return TS;
}

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

bool telemetry::enabled() { return Enabled.load(std::memory_order_relaxed); }

void telemetry::setEnabled(bool On) {
  Enabled.store(On, std::memory_order_relaxed);
}

void telemetry::reset() {
  GlobalState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Events.clear();
  for (Counter *C : S.Counters)
    C->Value.store(0, std::memory_order_relaxed);
}

Counter::Counter(const char *Name, const char *Description)
    : Name(Name), Description(Description) {
  GlobalState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Counters.push_back(this);
}

const std::vector<Counter *> &telemetry::counters() {
  return state().Counters;
}

TimeScope::TimeScope(const char *Label)
    : Active(Enabled.load(std::memory_order_relaxed)), Label(Label) {
  if (!Active)
    return;
  ThreadStack &TS = threadStack();
  Depth = static_cast<uint32_t>(TS.Labels.size());
  TS.Labels.push_back(Label);
  if (!TS.Path.empty())
    TS.Path += '/';
  TS.Path += Label;
  Path = TS.Path;
  StartNs = nowNs();
}

TimeScope::~TimeScope() {
  if (!Active)
    return;
  uint64_t End = nowNs();
  ThreadStack &TS = threadStack();
  // Pop our label (and the separator) off the thread path.
  if (!TS.Labels.empty()) {
    size_t LabelLen = std::char_traits<char>::length(TS.Labels.back());
    size_t Cut = TS.Path.size() >= LabelLen ? TS.Path.size() - LabelLen : 0;
    if (Cut > 0)
      --Cut; // the '/' separator
    TS.Path.resize(Cut);
    TS.Labels.pop_back();
  }
  GlobalState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Events.push_back(
      {std::move(Path), Label, StartNs, End - StartNs, TS.Id, Depth});
}

std::vector<TimedEvent> telemetry::events() {
  GlobalState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  return S.Events;
}

std::vector<TimerAggregate> telemetry::timerAggregates() {
  std::map<std::string, TimerAggregate> ByPath;
  for (const TimedEvent &E : events()) {
    TimerAggregate &A = ByPath[E.Path];
    A.Path = E.Path;
    ++A.Calls;
    A.TotalNs += E.DurationNs;
  }
  std::vector<TimerAggregate> Out;
  Out.reserve(ByPath.size());
  for (auto &[Path, A] : ByPath)
    Out.push_back(std::move(A));
  std::sort(Out.begin(), Out.end(),
            [](const TimerAggregate &A, const TimerAggregate &B) {
              return A.TotalNs != B.TotalNs ? A.TotalNs > B.TotalNs
                                            : A.Path < B.Path;
            });
  return Out;
}

void telemetry::printTimerReport(std::ostream &OS) {
  std::vector<TimerAggregate> Aggs = timerAggregates();
  size_t PathWidth = std::string("path").size();
  for (const TimerAggregate &A : Aggs)
    PathWidth = std::max(PathWidth, A.Path.size());
  OS << "=== pass timing ===\n"
     << std::left << std::setw(static_cast<int>(PathWidth) + 2) << "path"
     << std::right << std::setw(8) << "calls" << std::setw(12) << "total ms"
     << '\n';
  for (const TimerAggregate &A : Aggs) {
    OS << std::left << std::setw(static_cast<int>(PathWidth) + 2) << A.Path
       << std::right << std::setw(8) << A.Calls << std::setw(12) << std::fixed
       << std::setprecision(3) << static_cast<double>(A.TotalNs) / 1e6
       << '\n';
  }
}

void telemetry::writeChromeTrace(std::ostream &OS) {
  json::Value Root = json::Value::object();
  json::Value Trace = json::Value::array();
  for (const TimedEvent &E : events()) {
    json::Value Ev = json::Value::object();
    // The event name is the scope's own label so chrome://tracing
    // groups repeated phases; the full hierarchical path rides in args.
    Ev.set("name", E.Label);
    Ev.set("cat", "pira");
    Ev.set("ph", "X");
    Ev.set("ts", static_cast<double>(E.StartNs) / 1e3); // microseconds
    Ev.set("dur", static_cast<double>(E.DurationNs) / 1e3);
    Ev.set("pid", 1);
    Ev.set("tid", static_cast<int64_t>(E.ThreadId));
    json::Value Args = json::Value::object();
    Args.set("path", E.Path);
    Args.set("depth", static_cast<int64_t>(E.Depth));
    Ev.set("args", std::move(Args));
    Trace.push(std::move(Ev));
  }
  Root.set("traceEvents", std::move(Trace));
  Root.set("displayTimeUnit", "ms");
  Root.write(OS, 0);
  OS << '\n';
}

bool telemetry::writeChromeTraceFile(const std::string &FilePath,
                                     std::string &Error) {
  std::ofstream Out(FilePath);
  if (!Out) {
    Error = "cannot open '" + FilePath + "' for writing";
    return false;
  }
  writeChromeTrace(Out);
  if (!Out) {
    Error = "error while writing '" + FilePath + "'";
    return false;
  }
  return true;
}
