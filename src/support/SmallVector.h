//===- support/SmallVector.h - Inline-storage vector ------------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector with inline storage for the first InlineCapacity elements,
/// spilling to the heap only beyond that. Instruction operand lists are
/// almost always tiny (zero to three registers, one or two branch targets),
/// so storing them inline turns an Instruction into one flat object and
/// removes a malloc/free plus a pointer chase from every IR touch on the
/// hot compile path.
///
/// Restricted to trivially copyable element types; that keeps relocation a
/// memcpy and the container itself cheap to move.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SUPPORT_SMALLVECTOR_H
#define PIRA_SUPPORT_SMALLVECTOR_H

#include <cassert>
#include <cstring>
#include <initializer_list>
#include <type_traits>
#include <utility>
#include <vector>

namespace pira {

/// A dynamically sized sequence of trivially copyable elements with inline
/// storage for the first \p InlineCapacity of them.
template <typename T, unsigned InlineCapacity> class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector is restricted to trivially copyable types");
  static_assert(InlineCapacity > 0, "inline capacity must be nonzero");

public:
  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;

  SmallVector() = default;

  SmallVector(std::initializer_list<T> Init) { assign(Init.begin(), Init.size()); }

  /// Converting constructor from std::vector, so call sites that build
  /// operand lists as plain vectors keep working unchanged.
  SmallVector(const std::vector<T> &V) { assign(V.data(), V.size()); }

  SmallVector(const SmallVector &RHS) { assign(RHS.data(), RHS.Size); }

  SmallVector(SmallVector &&RHS) noexcept { stealFrom(RHS); }

  SmallVector &operator=(const SmallVector &RHS) {
    if (this != &RHS)
      assign(RHS.data(), RHS.Size);
    return *this;
  }

  SmallVector &operator=(SmallVector &&RHS) noexcept {
    if (this != &RHS) {
      freeHeap();
      stealFrom(RHS);
    }
    return *this;
  }

  ~SmallVector() { freeHeap(); }

  unsigned size() const { return Size; }
  bool empty() const { return Size == 0; }

  T *data() { return Capacity == InlineCapacity ? Inline : Heap; }
  const T *data() const {
    return Capacity == InlineCapacity ? Inline : Heap;
  }

  iterator begin() { return data(); }
  iterator end() { return data() + Size; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + Size; }

  T &operator[](unsigned Idx) {
    assert(Idx < Size && "index out of range");
    return data()[Idx];
  }
  const T &operator[](unsigned Idx) const {
    assert(Idx < Size && "index out of range");
    return data()[Idx];
  }

  T &back() {
    assert(Size != 0 && "back of empty vector");
    return data()[Size - 1];
  }
  const T &back() const {
    assert(Size != 0 && "back of empty vector");
    return data()[Size - 1];
  }

  void push_back(const T &V) {
    if (Size == Capacity)
      grow(Capacity * 2);
    data()[Size++] = V;
  }

  void pop_back() {
    assert(Size != 0 && "pop of empty vector");
    --Size;
  }

  void clear() { Size = 0; }

  bool operator==(const SmallVector &RHS) const {
    if (Size != RHS.Size)
      return false;
    const T *A = data(), *B = RHS.data();
    for (unsigned I = 0; I != Size; ++I)
      if (!(A[I] == B[I]))
        return false;
    return true;
  }
  bool operator!=(const SmallVector &RHS) const { return !(*this == RHS); }

private:
  void assign(const T *Src, size_t N) {
    Size = 0;
    if (N > Capacity)
      grow(static_cast<unsigned>(N));
    if (N != 0)
      std::memcpy(data(), Src, N * sizeof(T));
    Size = static_cast<unsigned>(N);
  }

  void grow(unsigned NewCapacity) {
    if (NewCapacity < Capacity * 2)
      NewCapacity = Capacity * 2;
    T *NewHeap = new T[NewCapacity];
    if (Size != 0)
      std::memcpy(NewHeap, data(), Size * sizeof(T));
    freeHeap();
    Heap = NewHeap;
    Capacity = NewCapacity;
  }

  /// Takes RHS's contents; RHS is left empty. Inline contents are copied
  /// (trivially), heap contents are adopted by pointer.
  void stealFrom(SmallVector &RHS) {
    Size = RHS.Size;
    Capacity = RHS.Capacity;
    if (RHS.Capacity == InlineCapacity) {
      if (Size != 0)
        std::memcpy(Inline, RHS.Inline, Size * sizeof(T));
    } else {
      Heap = RHS.Heap;
      RHS.Heap = nullptr;
      RHS.Capacity = InlineCapacity;
    }
    RHS.Size = 0;
  }

  void freeHeap() {
    if (Capacity != InlineCapacity) {
      delete[] Heap;
      Heap = nullptr;
      Capacity = InlineCapacity;
    }
  }

  unsigned Size = 0;
  unsigned Capacity = InlineCapacity;
  union {
    T Inline[InlineCapacity];
    T *Heap;
  };
};

} // namespace pira

#endif // PIRA_SUPPORT_SMALLVECTOR_H
