//===- support/UndirectedGraph.h - Dense undirected graph -------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple undirected graph over vertices 0..N-1 with dense adjacency and
/// deterministic (ascending-index) neighbor iteration. Interference graphs,
/// false-dependence graphs, and the parallelizable interference graph are
/// all thin layers over this representation.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SUPPORT_UNDIRECTEDGRAPH_H
#define PIRA_SUPPORT_UNDIRECTEDGRAPH_H

#include "support/BitMatrix.h"

#include <cassert>
#include <utility>
#include <vector>

namespace pira {

/// An undirected graph with O(1) edge queries and word-parallel neighbor
/// rows. Self loops are rejected.
class UndirectedGraph {
public:
  UndirectedGraph() = default;

  /// Creates an edgeless graph on \p NumVertices vertices.
  explicit UndirectedGraph(unsigned NumVertices)
      : Adjacency(NumVertices), Degrees(NumVertices, 0) {}

  /// Adopts \p Adjacency wholesale as the edge set. The matrix must be
  /// symmetric with a zero diagonal; degrees and the edge count are
  /// derived by word-parallel popcounts, so bulk graph construction
  /// (e.g. the false-dependence graph's complement step) costs O(N^2/64)
  /// instead of one addEdge per pair.
  static UndirectedGraph fromSymmetric(BitMatrix Adjacency) {
    UndirectedGraph G;
    unsigned N = Adjacency.size();
    G.Degrees.resize(N);
    unsigned Total = 0;
    for (unsigned V = 0; V != N; ++V) {
      assert(!Adjacency.test(V, V) && "self loops are not allowed");
      G.Degrees[V] = Adjacency.row(V).count();
      Total += G.Degrees[V];
    }
    assert(Total % 2 == 0 && "adjacency matrix must be symmetric");
    G.NumEdges = Total / 2;
    G.Adjacency = std::move(Adjacency);
    return G;
  }

  /// Returns the number of vertices.
  unsigned numVertices() const { return Adjacency.size(); }

  /// Returns the number of edges.
  unsigned numEdges() const { return NumEdges; }

  /// Returns true if the edge {\p A, \p B} is present.
  bool hasEdge(unsigned A, unsigned B) const {
    assert(A < numVertices() && B < numVertices() && "vertex out of range");
    return Adjacency.test(A, B);
  }

  /// Inserts the edge {\p A, \p B} if absent. \returns true if inserted.
  bool addEdge(unsigned A, unsigned B) {
    assert(A != B && "self loops are not allowed");
    if (hasEdge(A, B))
      return false;
    Adjacency.setSymmetric(A, B);
    ++Degrees[A];
    ++Degrees[B];
    ++NumEdges;
    return true;
  }

  /// Removes the edge {\p A, \p B} if present. \returns true if removed.
  bool removeEdge(unsigned A, unsigned B) {
    if (!hasEdge(A, B))
      return false;
    Adjacency.reset(A, B);
    Adjacency.reset(B, A);
    --Degrees[A];
    --Degrees[B];
    --NumEdges;
    return true;
  }

  /// Returns the degree of \p V.
  unsigned degree(unsigned V) const {
    assert(V < numVertices() && "vertex out of range");
    return Degrees[V];
  }

  /// Returns the adjacency row of \p V (bit I set iff {V, I} is an edge).
  const BitVector &neighbors(unsigned V) const { return Adjacency.row(V); }

  /// Collects neighbors of \p V in ascending index order.
  std::vector<unsigned> neighborList(unsigned V) const {
    std::vector<unsigned> Result;
    const BitVector &Row = neighbors(V);
    for (int I = Row.findFirst(); I != -1;
         I = Row.findNext(static_cast<unsigned>(I)))
      Result.push_back(static_cast<unsigned>(I));
    return Result;
  }

  /// Collects all edges as (min, max) pairs in lexicographic order.
  std::vector<std::pair<unsigned, unsigned>> edgeList() const {
    std::vector<std::pair<unsigned, unsigned>> Result;
    for (unsigned V = 0, E = numVertices(); V != E; ++V) {
      const BitVector &Row = neighbors(V);
      for (int I = Row.findNext(V); I != -1;
           I = Row.findNext(static_cast<unsigned>(I)))
        Result.emplace_back(V, static_cast<unsigned>(I));
    }
    return Result;
  }

  /// Merges edges of \p RHS into this graph (vertex counts must match).
  void unionWith(const UndirectedGraph &RHS) {
    assert(numVertices() == RHS.numVertices() && "vertex count mismatch");
    for (const auto &[A, B] : RHS.edgeList())
      addEdge(A, B);
  }

private:
  BitMatrix Adjacency;
  std::vector<unsigned> Degrees;
  unsigned NumEdges = 0;
};

} // namespace pira

#endif // PIRA_SUPPORT_UNDIRECTEDGRAPH_H
