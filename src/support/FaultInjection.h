//===- support/FaultInjection.h - Deterministic fault harness ---*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic fault-injection harness for exercising every recovery
/// path of the fault-isolated pipeline. Faults are armed per named site
/// with a spec string (the PIRA_FAULT environment variable or `pirac
/// --fault-inject`):
///
///   site:n[,site:n...]      e.g.  "alloc.pinter:3,strategy.entry:7"
///
/// An armed site fires for every compilation whose *fault key* is a
/// multiple of n. The key is set by the batch driver to the function's
/// input position (faultinject::ScopedKey), so which functions fault is
/// a pure function of the input batch — never of thread scheduling —
/// and fault-injected runs keep the batch-determinism guarantee across
/// any --jobs value. Outside batch mode the key defaults to 0, which is
/// a multiple of everything: an armed site always fires.
///
/// Sites and their effects (the call site decides the effect; the
/// harness only answers "fire here?"):
///
///   parse.enter         parseFunctionEx returns an injected parse error
///   strategy.entry      runStrategy throws FaultInjectedError
///   alloc.pinter        pinterAllocate reports non-convergence
///   alloc.chaitin       Chaitin-based strategies report non-convergence
///   alloc.spillall      the spill-everywhere baseline reports failure
///   verify.final        post-allocation verification reports failure
///   sched.final         final scheduling throws FaultInjectedError
///   sim.measure         measurement throws FaultInjectedError
///   budget.instructions the guard treats the instruction budget as blown
///   budget.deadline     deadline::expired() reports an overrun
///
/// Network sites (threaded through service/Framing) model a hostile or
/// dying transport under the remote cache tier and the service client.
/// They fire on the *calling* side of the framing helpers, so arming
/// them in a client process leaves a separate daemon process untouched:
///
///   net.write.short     writeFrame puts half the frame on the wire,
///                       then fails (the peer sees a torn frame)
///   net.frame.torn      readFrame reports a mid-frame disconnect after
///                       the payload arrived
///   net.read.stall      readFrame reports the inactivity timeout
///                       without waiting (a stalled peer)
///   net.reset           readFrame reports ECONNRESET
///   net.payload.corrupt readFrame succeeds but the payload is
///                       corrupted in transit (one trailing digit
///                       mutated), exercising end-to-end integrity
///                       checks rather than transport error paths
///
/// Hard-fault sites (maybeHardFault, checked at the compile guard's
/// entry) do not throw — they take the process down the way a genuinely
/// poisoned input would, so they are only survivable under the batch
/// driver's --isolate sandbox:
///
///   crash.segv          raises SIGSEGV
///   crash.abort         calls abort() (SIGABRT)
///   crash.oom           simulates a runaway allocation ending in an
///                       OOM kill (bounded touch-the-pages burst, then
///                       SIGKILL — safe to fire on any host)
///   crash.hang          sleeps forever without ever reaching a
///                       deadline checkpoint (only the sandbox's
///                       wall-clock SIGKILL ends it)
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SUPPORT_FAULTINJECTION_H
#define PIRA_SUPPORT_FAULTINJECTION_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace pira {
namespace faultinject {

/// The exception thrown by sites whose effect is "throw". Carries the
/// site name so diagnostics can name the trigger.
class FaultInjectedError : public std::runtime_error {
public:
  explicit FaultInjectedError(const std::string &Site)
      : std::runtime_error("injected fault at site '" + Site + "'"),
        SiteName(Site) {}
  const std::string &site() const { return SiteName; }

private:
  std::string SiteName;
};

/// Every site name the harness accepts, in documentation order.
const std::vector<const char *> &knownSites();

/// Arms the harness from a spec string ("site:n,site:n"). Unknown sites
/// and non-positive counts are rejected with \p Error set and the
/// previous configuration left untouched. An empty spec disarms.
bool configure(std::string_view Spec, std::string &Error);

/// Disarms every site and marks the harness configured (the PIRA_FAULT
/// environment variable will not be re-read).
void reset();

/// True when any site is armed. One relaxed atomic load when idle.
bool enabled();

/// True when \p Site is armed and the current thread's fault key is a
/// multiple of its count. Pure: firing consumes nothing, so the same
/// key asks the same answer every time. The first call (process-wide)
/// adopts PIRA_FAULT if the harness was never configured explicitly.
bool shouldFire(const char *Site);

/// shouldFire, but throws FaultInjectedError instead of returning true.
void maybeThrow(const char *Site);

/// Checks the crash.* hard-fault sites in documentation order and
/// performs the first armed one's effect (SIGSEGV, abort, OOM-kill
/// emulation, or an uncheckpointed hang). Returns normally only when no
/// crash site fires. See the file comment: these faults are process
/// deaths by design and are only survivable under --isolate.
void maybeHardFault();

/// The current thread's fault key (0 unless a ScopedKey is live).
uint64_t currentKey();

/// Canonical "site:n[,site:n...]" rendering of the armed sites, in
/// armed order; "" when disarmed. Adopts PIRA_FAULT first if nothing
/// configured the harness yet, mirroring shouldFire. The compilation
/// cache folds this into its keys so a fault-injected compile can never
/// alias a clean one.
std::string currentSpec();

/// Sets the thread's fault key for one compilation; restores on exit.
class ScopedKey {
public:
  explicit ScopedKey(uint64_t Key);
  ~ScopedKey();
  ScopedKey(const ScopedKey &) = delete;
  ScopedKey &operator=(const ScopedKey &) = delete;

private:
  uint64_t Prev;
};

} // namespace faultinject
} // namespace pira

#endif // PIRA_SUPPORT_FAULTINJECTION_H
