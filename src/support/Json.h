//===- support/Json.h - Minimal JSON value, writer, and parser --*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dependency-free JSON library for the telemetry subsystem: a value
/// type with insertion-ordered objects (so reports are byte-stable run to
/// run), a pretty-printing writer, and a strict recursive-descent parser.
/// Integers are kept distinct from doubles so counters survive a
/// write/parse round trip exactly, and number formatting/parsing is
/// locale-independent (std::to_chars / std::from_chars): reports written
/// under a comma-decimal locale still read back everywhere.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SUPPORT_JSON_H
#define PIRA_SUPPORT_JSON_H

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace pira {
namespace json {

/// One JSON value of any kind. Objects preserve insertion order and
/// member lookup is linear — reports are small and stability matters
/// more than asymptotics here.
class Value {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Value() : K(Kind::Null) {}
  Value(std::nullptr_t) : K(Kind::Null) {}
  Value(bool B) : K(Kind::Bool), BoolVal(B) {}
  Value(int I) : K(Kind::Int), IntVal(I) {}
  Value(unsigned I) : K(Kind::Int), IntVal(static_cast<int64_t>(I)) {}
  Value(int64_t I) : K(Kind::Int), IntVal(I) {}
  Value(uint64_t I) : K(Kind::Int), IntVal(static_cast<int64_t>(I)) {}
  Value(double D) : K(Kind::Double), DoubleVal(D) {}
  Value(const char *S) : K(Kind::String), StringVal(S) {}
  Value(std::string S) : K(Kind::String), StringVal(std::move(S)) {}

  static Value array() {
    Value V;
    V.K = Kind::Array;
    return V;
  }
  static Value object() {
    Value V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isInt() const { return K == Kind::Int; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return BoolVal; }
  int64_t asInt() const {
    return K == Kind::Double ? static_cast<int64_t>(DoubleVal) : IntVal;
  }
  double asDouble() const {
    return K == Kind::Int ? static_cast<double>(IntVal) : DoubleVal;
  }
  const std::string &asString() const { return StringVal; }

  /// Array access.
  const std::vector<Value> &elements() const { return Elements; }
  void push(Value V) { Elements.push_back(std::move(V)); }
  size_t size() const {
    return K == Kind::Array ? Elements.size() : Members.size();
  }

  /// Object access. set() replaces an existing member in place so
  /// insertion order is preserved.
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Members;
  }
  void set(const std::string &Key, Value V) {
    for (auto &[K2, V2] : Members)
      if (K2 == Key) {
        V2 = std::move(V);
        return;
      }
    Members.emplace_back(Key, std::move(V));
  }
  /// Returns the member named \p Key, or null if absent.
  const Value *find(const std::string &Key) const {
    for (const auto &[K2, V2] : Members)
      if (K2 == Key)
        return &V2;
    return nullptr;
  }
  bool has(const std::string &Key) const { return find(Key) != nullptr; }

  /// Serializes with two-space indentation when \p Indent >= 0, compact
  /// otherwise.
  void write(std::ostream &OS, int Indent = 0) const;
  std::string toString(int Indent = 0) const;

private:
  Kind K;
  bool BoolVal = false;
  int64_t IntVal = 0;
  double DoubleVal = 0.0;
  std::string StringVal;
  std::vector<Value> Elements;
  std::vector<std::pair<std::string, Value>> Members;
};

/// Writes \p S with JSON escaping (quotes included).
void writeEscaped(std::ostream &OS, const std::string &S);

/// Parses \p Text into \p Out. On failure returns false and describes
/// the first error (with offset) in \p Error. Trailing garbage after the
/// top-level value is an error.
bool parse(const std::string &Text, Value &Out, std::string &Error);

} // namespace json
} // namespace pira

#endif // PIRA_SUPPORT_JSON_H
