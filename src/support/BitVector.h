//===- support/BitVector.h - Fixed-size dense bit vector -------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact dynamic bit vector used for liveness sets, adjacency rows, and
/// transitive-closure rows. Word-parallel set operations are the workhorse
/// of the dataflow and closure algorithms.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SUPPORT_BITVECTOR_H
#define PIRA_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pira {

/// A dense, resizable vector of bits with word-parallel set algebra.
class BitVector {
public:
  BitVector() = default;

  /// Creates a vector of \p NumBits bits, all initialized to \p Value.
  explicit BitVector(unsigned NumBits, bool Value = false)
      : NumBits(NumBits),
        Words((NumBits + WordBits - 1) / WordBits,
              Value ? ~uint64_t(0) : uint64_t(0)) {
    clearUnusedBits();
  }

  /// Returns the number of bits in the vector.
  unsigned size() const { return NumBits; }

  /// Returns true if no bit is set.
  bool none() const {
    for (uint64_t W : Words)
      if (W != 0)
        return false;
    return true;
  }

  /// Returns true if any bit is set.
  bool any() const { return !none(); }

  /// Returns the number of set bits.
  unsigned count() const {
    unsigned N = 0;
    for (uint64_t W : Words)
      N += static_cast<unsigned>(__builtin_popcountll(W));
    return N;
  }

  /// Reads bit \p Idx.
  bool test(unsigned Idx) const {
    assert(Idx < NumBits && "bit index out of range");
    return (Words[Idx / WordBits] >> (Idx % WordBits)) & 1;
  }

  /// Sets bit \p Idx to one.
  void set(unsigned Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / WordBits] |= uint64_t(1) << (Idx % WordBits);
  }

  /// Clears bit \p Idx.
  void reset(unsigned Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / WordBits] &= ~(uint64_t(1) << (Idx % WordBits));
  }

  /// Clears all bits.
  void resetAll() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// Sets all bits.
  void setAll() {
    for (uint64_t &W : Words)
      W = ~uint64_t(0);
    clearUnusedBits();
  }

  /// Resizes to \p NewSize bits; new bits are zero.
  void resize(unsigned NewSize) {
    Words.resize((NewSize + WordBits - 1) / WordBits, 0);
    NumBits = NewSize;
    clearUnusedBits();
  }

  /// In-place union; both vectors must have equal size.
  /// \returns true if this vector changed.
  bool unionWith(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch in union");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] |= RHS.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// In-place intersection; both vectors must have equal size.
  void intersectWith(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch in intersect");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= RHS.Words[I];
  }

  /// In-place set difference (this &= ~RHS); sizes must match.
  void subtract(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch in subtract");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= ~RHS.Words[I];
  }

  /// Returns true when this vector and \p RHS share any set bit; sizes
  /// must match. Word-parallel, no allocation.
  bool intersects(const BitVector &RHS) const {
    assert(NumBits == RHS.NumBits && "size mismatch in intersects");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      if ((Words[I] & RHS.Words[I]) != 0)
        return true;
    return false;
  }

  /// Flips every bit (one's complement within the declared size).
  void flipAll() {
    for (uint64_t &W : Words)
      W = ~W;
    clearUnusedBits();
  }

  /// Returns the index of the first set bit, or -1 when empty.
  int findFirst() const {
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      if (Words[I] != 0)
        return static_cast<int>(I * WordBits +
                                __builtin_ctzll(Words[I]));
    return -1;
  }

  /// Returns the index of the first set bit strictly after \p Prev,
  /// or -1 when none remains. Use with findFirst for ascending iteration.
  int findNext(unsigned Prev) const {
    unsigned Idx = Prev + 1;
    if (Idx >= NumBits)
      return -1;
    size_t WordIdx = Idx / WordBits;
    uint64_t Word = Words[WordIdx] & (~uint64_t(0) << (Idx % WordBits));
    while (true) {
      if (Word != 0)
        return static_cast<int>(WordIdx * WordBits + __builtin_ctzll(Word));
      if (++WordIdx == Words.size())
        return -1;
      Word = Words[WordIdx];
    }
  }

  bool operator==(const BitVector &RHS) const {
    return NumBits == RHS.NumBits && Words == RHS.Words;
  }
  bool operator!=(const BitVector &RHS) const { return !(*this == RHS); }

private:
  static constexpr unsigned WordBits = 64;

  void clearUnusedBits() {
    unsigned Tail = NumBits % WordBits;
    if (Tail != 0 && !Words.empty())
      Words.back() &= (uint64_t(1) << Tail) - 1;
  }

  unsigned NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace pira

#endif // PIRA_SUPPORT_BITVECTOR_H
