//===- support/Status.cpp - Structured diagnostics ------------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "support/Status.h"

using namespace pira;

const char *pira::errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Ok:
    return "ok";
  case ErrorCode::InvalidArgument:
    return "invalid-argument";
  case ErrorCode::ParseError:
    return "parse-error";
  case ErrorCode::VerifyError:
    return "verify-error";
  case ErrorCode::AllocFailure:
    return "alloc-failure";
  case ErrorCode::SimFailure:
    return "sim-failure";
  case ErrorCode::SemanticsDiverged:
    return "semantics-diverged";
  case ErrorCode::ResourceExhausted:
    return "resource-exhausted";
  case ErrorCode::DeadlineExceeded:
    return "deadline-exceeded";
  case ErrorCode::FaultInjected:
    return "fault-injected";
  case ErrorCode::ChildCrashed:
    return "child-crashed";
  case ErrorCode::ChildKilled:
    return "child-killed";
  case ErrorCode::ChildTimeout:
    return "child-timeout";
  case ErrorCode::SearchExhausted:
    return "search-exhausted";
  case ErrorCode::ServerOverloaded:
    return "server-overloaded";
  case ErrorCode::ProtocolError:
    return "protocol-error";
  case ErrorCode::Internal:
    return "internal";
  }
  return "internal";
}

ErrorCode pira::errorCodeFromName(std::string_view Name) {
  static const ErrorCode All[] = {
      ErrorCode::Ok,           ErrorCode::InvalidArgument,
      ErrorCode::ParseError,   ErrorCode::VerifyError,
      ErrorCode::AllocFailure, ErrorCode::SimFailure,
      ErrorCode::SemanticsDiverged, ErrorCode::ResourceExhausted,
      ErrorCode::DeadlineExceeded,  ErrorCode::FaultInjected,
      ErrorCode::ChildCrashed, ErrorCode::ChildKilled,
      ErrorCode::ChildTimeout, ErrorCode::SearchExhausted,
      ErrorCode::ServerOverloaded, ErrorCode::ProtocolError,
      ErrorCode::Internal,
  };
  for (ErrorCode C : All)
    if (Name == errorCodeName(C))
      return C;
  return ErrorCode::Internal;
}

Status Status::fromJson(const json::Value &V) {
  if (!V.isObject())
    return Status::error(ErrorCode::Internal, "status",
                         "malformed serialized diagnostic");
  const json::Value *Code = V.find("code");
  if (Code == nullptr || !Code->isString() || Code->asString() == "ok")
    return Status();
  const json::Value *Phase = V.find("phase");
  const json::Value *Msg = V.find("message");
  Status S = Status::error(
      errorCodeFromName(Code->asString()),
      Phase != nullptr && Phase->isString() ? Phase->asString() : "",
      Msg != nullptr && Msg->isString() ? Msg->asString() : "");
  const json::Value *Frames = V.find("context");
  if (Frames != nullptr && Frames->isArray())
    for (const json::Value &F : Frames->elements())
      if (F.isString())
        S.addContext(F.asString());
  return S;
}

std::string Status::toString() const {
  if (ok())
    return "ok";
  std::string Out;
  if (!PhaseName.empty())
    Out += PhaseName + ": ";
  Out += Msg.empty() ? errorCodeName(ErrCode) : Msg;
  if (!Context.empty()) {
    Out += " [";
    for (size_t I = 0; I != Context.size(); ++I) {
      if (I != 0)
        Out += "; ";
      Out += Context[I];
    }
    Out += "]";
  }
  return Out;
}

json::Value Status::toJson() const {
  json::Value Out = json::Value::object();
  Out.set("code", std::string(errorCodeName(ErrCode)));
  if (ok())
    return Out;
  Out.set("phase", PhaseName);
  Out.set("message", Msg);
  json::Value Frames = json::Value::array();
  for (const std::string &Frame : Context)
    Frames.push(json::Value(Frame));
  Out.set("context", std::move(Frames));
  return Out;
}
