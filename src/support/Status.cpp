//===- support/Status.cpp - Structured diagnostics ------------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "support/Status.h"

using namespace pira;

const char *pira::errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Ok:
    return "ok";
  case ErrorCode::InvalidArgument:
    return "invalid-argument";
  case ErrorCode::ParseError:
    return "parse-error";
  case ErrorCode::VerifyError:
    return "verify-error";
  case ErrorCode::AllocFailure:
    return "alloc-failure";
  case ErrorCode::SimFailure:
    return "sim-failure";
  case ErrorCode::SemanticsDiverged:
    return "semantics-diverged";
  case ErrorCode::ResourceExhausted:
    return "resource-exhausted";
  case ErrorCode::DeadlineExceeded:
    return "deadline-exceeded";
  case ErrorCode::FaultInjected:
    return "fault-injected";
  case ErrorCode::Internal:
    return "internal";
  }
  return "internal";
}

std::string Status::toString() const {
  if (ok())
    return "ok";
  std::string Out;
  if (!PhaseName.empty())
    Out += PhaseName + ": ";
  Out += Msg.empty() ? errorCodeName(ErrCode) : Msg;
  if (!Context.empty()) {
    Out += " [";
    for (size_t I = 0; I != Context.size(); ++I) {
      if (I != 0)
        Out += "; ";
      Out += Context[I];
    }
    Out += "]";
  }
  return Out;
}

json::Value Status::toJson() const {
  json::Value Out = json::Value::object();
  Out.set("code", std::string(errorCodeName(ErrCode)));
  if (ok())
    return Out;
  Out.set("phase", PhaseName);
  Out.set("message", Msg);
  json::Value Frames = json::Value::array();
  for (const std::string &Frame : Context)
    Frames.push(json::Value(Frame));
  Out.set("context", std::move(Frames));
  return Out;
}
