//===- support/Io.cpp - Retrying descriptor I/O helpers -------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "support/Io.h"

#include <cerrno>
#include <csignal>
#include <mutex>

#include <unistd.h>

using namespace pira;

ssize_t io::readFull(int Fd, void *Buf, size_t Size) {
  char *Out = static_cast<char *>(Buf);
  size_t Off = 0;
  while (Off < Size) {
    ssize_t N = ::read(Fd, Out + Off, Size - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (N == 0)
      break; // EOF: report the short count to the caller.
    Off += static_cast<size_t>(N);
  }
  return static_cast<ssize_t>(Off);
}

bool io::writeFull(int Fd, const void *Buf, size_t Size) {
  const char *In = static_cast<const char *>(Buf);
  size_t Off = 0;
  while (Off < Size) {
    ssize_t N = ::write(Fd, In + Off, Size - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool io::isDisconnectError(int Err) {
  return Err == EPIPE || Err == ECONNRESET || Err == ECONNABORTED ||
         Err == ENOTCONN;
}

void io::ignoreSigpipe() {
  static std::once_flag Once;
  std::call_once(Once, [] { ::signal(SIGPIPE, SIG_IGN); });
}
