//===- support/DotWriter.cpp - GraphViz emission helpers ------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "support/DotWriter.h"

#include "support/UndirectedGraph.h"

using namespace pira;

DotWriter::DotWriter(std::ostream &OS, const std::string &Name, bool Directed)
    : OS(OS), Directed(Directed) {
  OS << (Directed ? "digraph " : "graph ") << Name << " {\n";
}

void DotWriter::node(unsigned Id, const std::string &Label,
                     const std::string &Attrs) {
  OS << "  n" << Id << " [label=\"" << Label << "\"";
  if (!Attrs.empty())
    OS << ", " << Attrs;
  OS << "];\n";
}

void DotWriter::edge(unsigned From, unsigned To, const std::string &Attrs) {
  OS << "  n" << From << (Directed ? " -> n" : " -- n") << To;
  if (!Attrs.empty())
    OS << " [" << Attrs << "]";
  OS << ";\n";
}

void DotWriter::allEdges(const UndirectedGraph &G, const std::string &Attrs) {
  for (const auto &[A, B] : G.edgeList())
    edge(A, B, Attrs);
}

void DotWriter::finish() {
  if (Finished)
    return;
  OS << "}\n";
  Finished = true;
}

DotWriter::~DotWriter() { finish(); }
