//===- support/Telemetry.h - Phase timers and counter registry --*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer every pipeline pass reports through:
///
///   * PIRA_TIME_SCOPE("pig/closure") — an RAII phase timer. Scopes nest:
///     each thread keeps a stack of active labels and every finished
///     scope records its full hierarchical path
///     ("strategy/combined/alloc/pinter/pig/closure"). Timers are
///     monotonic-clock based and cost one relaxed atomic load when
///     telemetry is disabled (the default).
///
///   * PIRA_STAT(NumFoo, "description") — an LLVM-Statistic-style
///     process-global counter. Counters register themselves once, bump
///     via relaxed atomics (so later parallel passes can share them),
///     and are enumerable for reports.
///
///   * PIRA_HIST(FooLatency, "description") — a fixed-bucket log2
///     latency histogram (64 power-of-two buckets over nanoseconds).
///     Like counters, histograms record regardless of the enable switch
///     (a handful of relaxed increments per coarse-grained event), and
///     their merge — elementwise bucket addition — is commutative, so
///     distributions from thread-pool workers and sandboxed children
///     fold together deterministically. Stats reports derive
///     p50/p90/p99 upper bounds from the buckets.
///
///   * Chrome trace-event export (writeChromeTrace) — one complete "X"
///     duration event per finished scope, tagged with the real process
///     id and a dense thread id, plus "M" metadata events naming every
///     process and thread, loadable in chrome://tracing or Perfetto.
///
///   * Cross-process propagation (snapshotToJson / mergeSnapshot) — a
///     `pirac --worker` child serializes its counters, histograms, and
///     trace events into its result document; the parent re-bases the
///     child's timestamps onto its own clock, keeps the child's pid on
///     every merged event, and folds counters and histograms into the
///     process-global registries. Isolated batches therefore report the
///     same phase counters and nested child phase spans an in-process
///     run would.
///
///   * Aggregated timing (timerAggregates / printTimerReport) — per-path
///     call counts and total wall time, the data behind `pirac
///     --time-passes` and the "timers" section of stats reports.
///
///   * Prometheus/OpenMetrics export (writePrometheus) — the counter
///     registry and every histogram in the text exposition format, the
///     payload a future `pirac serve --metrics` endpoint would serve.
///
/// Thread-safety: counters and histograms are always safe; scope
/// recording takes one mutex per *finished* scope, and the active-scope
/// stack is thread-local, so instrumented passes may run concurrently.
/// mergeSnapshot may be called from pool workers concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SUPPORT_TELEMETRY_H
#define PIRA_SUPPORT_TELEMETRY_H

#include "support/Json.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace pira {
namespace telemetry {

//===----------------------------------------------------------------------===//
// Global enable switch
//===----------------------------------------------------------------------===//

/// True when phase timers record events. Counters and histograms record
/// regardless (a relaxed increment is cheaper than the branch would be
/// worth).
bool enabled();

/// Turns scope recording on or off process-wide.
void setEnabled(bool On);

/// Zeroes every registered counter and histogram and drops all recorded
/// timer events. Active (unclosed) scopes are unaffected: their paths
/// were captured on entry and they record normally when they close.
void reset();

/// The calling process's pid, cached. Stamped on every recorded event so
/// merged parent+child traces keep their origin.
uint64_t processId();

/// Monotonic now, ns since the clock epoch — the same clock the timers
/// use, exposed so callers can re-base foreign timestamps onto it.
uint64_t monotonicNowNs();

//===----------------------------------------------------------------------===//
// Counters
//===----------------------------------------------------------------------===//

/// A named process-global counter. Instances must have static storage
/// duration (PIRA_STAT arranges this); the registry keeps raw pointers.
class Counter {
public:
  Counter(const char *Name, const char *Description);

  Counter &operator++() {
    Value.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  void operator++(int) { Value.fetch_add(1, std::memory_order_relaxed); }
  Counter &operator+=(uint64_t Delta) {
    Value.fetch_add(Delta, std::memory_order_relaxed);
    return *this;
  }
  /// Raises the counter to at least \p V (for high-water marks).
  void updateMax(uint64_t V) {
    uint64_t Cur = Value.load(std::memory_order_relaxed);
    while (Cur < V &&
           !Value.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
      ;
  }

  uint64_t value() const { return Value.load(std::memory_order_relaxed); }
  const char *name() const { return Name; }
  const char *description() const { return Description; }

private:
  friend void reset();
  const char *Name;
  const char *Description;
  std::atomic<uint64_t> Value{0};
};

/// All counters registered so far, in registration order.
const std::vector<Counter *> &counters();

/// Adds \p Delta to the registered counter named \p Name (how child
/// counter snapshots fold into the parent). False when no such counter
/// exists — possible only across binary versions, and then the value is
/// deliberately dropped rather than misattributed.
bool addToCounter(const std::string &Name, uint64_t Delta);

//===----------------------------------------------------------------------===//
// Histograms
//===----------------------------------------------------------------------===//

/// A fixed-bucket log2 histogram over uint64 values (nanoseconds by
/// convention). Bucket 0 holds exactly the value 0; bucket i >= 1 holds
/// [2^(i-1), 2^i). Values at or above 2^62 land in the last bucket.
/// Everything is relaxed atomics, so recording and merging are safe from
/// any thread, and merges (elementwise sums plus a max fold) are
/// commutative — the deterministic-merge property the batch driver's
/// byte-identity contract leans on. Instances must have static storage
/// duration (PIRA_HIST arranges this).
class Histogram {
public:
  static constexpr unsigned NumBuckets = 64;

  Histogram(const char *Name, const char *Description);

  /// Records one value (ns).
  void record(uint64_t V) {
    Buckets[bucketFor(V)].fetch_add(1, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(V, std::memory_order_relaxed);
    uint64_t Cur = Max.load(std::memory_order_relaxed);
    while (Cur < V &&
           !Max.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
      ;
  }

  /// The bucket index \p V lands in.
  static unsigned bucketFor(uint64_t V);

  /// Inclusive upper bound of bucket \p I (0 for bucket 0, 2^I - 1
  /// otherwise; UINT64_MAX for the last bucket).
  static uint64_t bucketUpperBound(unsigned I);

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  uint64_t bucketCount(unsigned I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }

  /// Upper bound of the bucket containing the \p P-th percentile
  /// (0 < P <= 100) — a deterministic function of the bucket counts
  /// alone. 0 for an empty histogram.
  uint64_t percentileUpperBound(double P) const;

  /// Folds a foreign bucket into this histogram (cross-process merge).
  void addBucket(unsigned I, uint64_t N) {
    if (I < NumBuckets && N != 0) {
      Buckets[I].fetch_add(N, std::memory_order_relaxed);
      Count.fetch_add(N, std::memory_order_relaxed);
    }
  }
  void addSum(uint64_t S) { Sum.fetch_add(S, std::memory_order_relaxed); }
  void updateMax(uint64_t V) {
    uint64_t Cur = Max.load(std::memory_order_relaxed);
    while (Cur < V &&
           !Max.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
      ;
  }

  const char *name() const { return Name; }
  const char *description() const { return Description; }

private:
  friend void reset();
  const char *Name;
  const char *Description;
  std::array<std::atomic<uint64_t>, NumBuckets> Buckets{};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Max{0};
};

/// All histograms registered so far, in registration order.
const std::vector<Histogram *> &histograms();

/// The registered histogram named \p Name, or null.
Histogram *findHistogram(const std::string &Name);

/// RAII latency recorder: records the enclosing scope's wall time (ns)
/// into \p H on destruction. Always on, like the histogram itself.
class HistTimer {
public:
  explicit HistTimer(Histogram &H) : H(H), StartNs(monotonicNowNs()) {}
  ~HistTimer() { H.record(monotonicNowNs() - StartNs); }
  HistTimer(const HistTimer &) = delete;
  HistTimer &operator=(const HistTimer &) = delete;

private:
  Histogram &H;
  uint64_t StartNs;
};

//===----------------------------------------------------------------------===//
// Phase timers
//===----------------------------------------------------------------------===//

/// One finished timed scope.
struct TimedEvent {
  std::string Path;    ///< Hierarchical "outer/inner" path.
  std::string Label;   ///< The literal passed to PIRA_TIME_SCOPE.
  uint64_t StartNs;    ///< Monotonic start, ns since process epoch.
  uint64_t DurationNs; ///< Wall time inside the scope.
  uint32_t ThreadId;   ///< Dense per-process thread number.
  uint32_t Depth;      ///< Nesting depth at entry (0 = top level).
  uint64_t Pid;        ///< Real pid of the recording process.
};

/// RAII phase timer; see file comment. Label must outlive the scope
/// (string literals only).
class TimeScope {
public:
  explicit TimeScope(const char *Label);
  ~TimeScope();
  TimeScope(const TimeScope &) = delete;
  TimeScope &operator=(const TimeScope &) = delete;

private:
  bool Active;
  const char *Label;
  uint64_t StartNs = 0;
  std::string Path;
  uint32_t Depth = 0;
};

/// Snapshot of every recorded event, in completion order.
std::vector<TimedEvent> events();

/// Appends pre-built events (a child's, already tagged with the child's
/// pid/tid and re-based timestamps) to the global log. No-op while
/// recording is disabled, mirroring TimeScope.
void recordForeignEvents(std::vector<TimedEvent> Events);

/// Per-path aggregate of the recorded events.
struct TimerAggregate {
  std::string Path;
  uint64_t Calls = 0;
  uint64_t TotalNs = 0;
};

/// Aggregates events by path, ordered by descending total time.
std::vector<TimerAggregate> timerAggregates();

/// Prints the --time-passes table (path, calls, total ms) to \p OS.
void printTimerReport(std::ostream &OS);

//===----------------------------------------------------------------------===//
// Cross-process snapshots
//===----------------------------------------------------------------------===//

/// Serializes this process's telemetry for transport to a parent: its
/// pid, every nonzero counter, every nonempty histogram (sparse
/// buckets), and — when scope recording is enabled — every finished
/// trace event. The result is deterministic for deterministic work
/// modulo the timestamp fields.
json::Value snapshotToJson();

/// Folds a snapshotToJson document into this process's registries:
/// counters add by name, histograms merge buckets/sum/max by name, and
/// trace events are appended with the child's pid/tid kept and their
/// timestamps re-based so the earliest child event lands at
/// \p RebaseStartNs on this process's clock (events merge only while
/// recording is enabled). Unknown names are dropped. Safe to call from
/// concurrent pool workers.
void mergeSnapshot(const json::Value &Snapshot, uint64_t RebaseStartNs);

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

/// Writes the recorded events as Chrome trace-event JSON (the
/// {"traceEvents": [...]} object form). Each finished scope is one
/// complete "X" event whose name is its leaf label, whose pid/tid are
/// the real recording process and its dense thread number, and whose
/// args carry the full path; "M" metadata events name every process
/// ("pirac" / "pirac --worker") and thread so merged parent+child
/// traces read cleanly. Loadable in chrome://tracing and Perfetto.
void writeChromeTrace(std::ostream &OS);

/// writeChromeTrace to a file, or to stdout when \p FilePath is "-";
/// false (with \p Error set) when the sink cannot be written.
bool writeChromeTraceFile(const std::string &FilePath, std::string &Error);

/// Writes every counter and histogram in the Prometheus/OpenMetrics
/// text exposition format: counters as `pira_<Name>_total`, histograms
/// as `pira_<Name>_seconds` with cumulative `_bucket{le="..."}` lines
/// (log2 boundaries converted to seconds), `_sum`, and `_count`,
/// terminated by "# EOF".
void writePrometheus(std::ostream &OS);

/// writePrometheus to a file, or to stdout when \p FilePath is "-";
/// false (with \p Error set) when the sink cannot be written.
bool writeMetricsFile(const std::string &FilePath, std::string &Error);

} // namespace telemetry
} // namespace pira

//===----------------------------------------------------------------------===//
// Instrumentation macros
//===----------------------------------------------------------------------===//

/// Defines (at namespace or function scope) a static counter named
/// \p NAME, registered once process-wide under "NAME".
#define PIRA_STAT(NAME, DESC)                                                  \
  static ::pira::telemetry::Counter NAME(#NAME, DESC)

/// Defines (at namespace or function scope) a static log2 histogram
/// named \p NAME, registered once process-wide under "NAME".
#define PIRA_HIST(NAME, DESC)                                                  \
  static ::pira::telemetry::Histogram NAME(#NAME, DESC)

#define PIRA_TIME_SCOPE_CONCAT2(A, B) A##B
#define PIRA_TIME_SCOPE_CONCAT(A, B) PIRA_TIME_SCOPE_CONCAT2(A, B)
/// Times the enclosing scope under \p LABEL (a string literal).
#define PIRA_TIME_SCOPE(LABEL)                                                 \
  ::pira::telemetry::TimeScope PIRA_TIME_SCOPE_CONCAT(PiraTimeScope_,          \
                                                      __LINE__)(LABEL)

#endif // PIRA_SUPPORT_TELEMETRY_H
