//===- support/Telemetry.h - Phase timers and counter registry --*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer every pipeline pass reports through:
///
///   * PIRA_TIME_SCOPE("pig/closure") — an RAII phase timer. Scopes nest:
///     each thread keeps a stack of active labels and every finished
///     scope records its full hierarchical path
///     ("strategy/combined/alloc/pinter/pig/closure"). Timers are
///     monotonic-clock based and cost one relaxed atomic load when
///     telemetry is disabled (the default).
///
///   * PIRA_STAT(NumFoo, "description") — an LLVM-Statistic-style
///     process-global counter. Counters register themselves once, bump
///     via relaxed atomics (so later parallel passes can share them),
///     and are enumerable for reports.
///
///   * Chrome trace-event export (writeChromeTrace) — one complete "X"
///     duration event per finished scope, loadable in chrome://tracing
///     or Perfetto.
///
///   * Aggregated timing (timerAggregates / printTimerReport) — per-path
///     call counts and total wall time, the data behind `pirac
///     --time-passes` and the "timers" section of stats reports.
///
/// Thread-safety: counters are always safe; scope recording takes one
/// mutex per *finished* scope, and the active-scope stack is
/// thread-local, so instrumented passes may run concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SUPPORT_TELEMETRY_H
#define PIRA_SUPPORT_TELEMETRY_H

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace pira {
namespace telemetry {

//===----------------------------------------------------------------------===//
// Global enable switch
//===----------------------------------------------------------------------===//

/// True when phase timers record events. Counters count regardless (a
/// relaxed increment is cheaper than the branch would be worth).
bool enabled();

/// Turns scope recording on or off process-wide.
void setEnabled(bool On);

/// Zeroes every registered counter and drops all recorded timer events.
/// Active (unclosed) scopes are unaffected: their paths were captured on
/// entry and they record normally when they close.
void reset();

//===----------------------------------------------------------------------===//
// Counters
//===----------------------------------------------------------------------===//

/// A named process-global counter. Instances must have static storage
/// duration (PIRA_STAT arranges this); the registry keeps raw pointers.
class Counter {
public:
  Counter(const char *Name, const char *Description);

  Counter &operator++() {
    Value.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  void operator++(int) { Value.fetch_add(1, std::memory_order_relaxed); }
  Counter &operator+=(uint64_t Delta) {
    Value.fetch_add(Delta, std::memory_order_relaxed);
    return *this;
  }
  /// Raises the counter to at least \p V (for high-water marks).
  void updateMax(uint64_t V) {
    uint64_t Cur = Value.load(std::memory_order_relaxed);
    while (Cur < V &&
           !Value.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
      ;
  }

  uint64_t value() const { return Value.load(std::memory_order_relaxed); }
  const char *name() const { return Name; }
  const char *description() const { return Description; }

private:
  friend void reset();
  const char *Name;
  const char *Description;
  std::atomic<uint64_t> Value{0};
};

/// All counters registered so far, in registration order.
const std::vector<Counter *> &counters();

//===----------------------------------------------------------------------===//
// Phase timers
//===----------------------------------------------------------------------===//

/// One finished timed scope.
struct TimedEvent {
  std::string Path;    ///< Hierarchical "outer/inner" path.
  const char *Label;   ///< The literal passed to PIRA_TIME_SCOPE.
  uint64_t StartNs;    ///< Monotonic start, ns since process epoch.
  uint64_t DurationNs; ///< Wall time inside the scope.
  uint32_t ThreadId;   ///< Dense per-process thread number.
  uint32_t Depth;      ///< Nesting depth at entry (0 = top level).
};

/// RAII phase timer; see file comment. Label must outlive the scope
/// (string literals only).
class TimeScope {
public:
  explicit TimeScope(const char *Label);
  ~TimeScope();
  TimeScope(const TimeScope &) = delete;
  TimeScope &operator=(const TimeScope &) = delete;

private:
  bool Active;
  const char *Label;
  uint64_t StartNs = 0;
  std::string Path;
  uint32_t Depth = 0;
};

/// Snapshot of every recorded event, in completion order.
std::vector<TimedEvent> events();

/// Per-path aggregate of the recorded events.
struct TimerAggregate {
  std::string Path;
  uint64_t Calls = 0;
  uint64_t TotalNs = 0;
};

/// Aggregates events by path, ordered by descending total time.
std::vector<TimerAggregate> timerAggregates();

/// Prints the --time-passes table (path, calls, total ms) to \p OS.
void printTimerReport(std::ostream &OS);

/// Writes the recorded events as Chrome trace-event JSON (the
/// {"traceEvents": [...]} object form; each scope is one complete "X"
/// event whose name is its leaf label and whose args carry the full
/// path). Loadable in chrome://tracing and Perfetto.
void writeChromeTrace(std::ostream &OS);

/// writeChromeTrace to a file; false (with \p Error set) when the file
/// cannot be written.
bool writeChromeTraceFile(const std::string &FilePath, std::string &Error);

} // namespace telemetry
} // namespace pira

//===----------------------------------------------------------------------===//
// Instrumentation macros
//===----------------------------------------------------------------------===//

/// Defines (at namespace or function scope) a static counter named
/// \p NAME, registered once process-wide under "NAME".
#define PIRA_STAT(NAME, DESC)                                                  \
  static ::pira::telemetry::Counter NAME(#NAME, DESC)

#define PIRA_TIME_SCOPE_CONCAT2(A, B) A##B
#define PIRA_TIME_SCOPE_CONCAT(A, B) PIRA_TIME_SCOPE_CONCAT2(A, B)
/// Times the enclosing scope under \p LABEL (a string literal).
#define PIRA_TIME_SCOPE(LABEL)                                                 \
  ::pira::telemetry::TimeScope PIRA_TIME_SCOPE_CONCAT(PiraTimeScope_,          \
                                                      __LINE__)(LABEL)

#endif // PIRA_SUPPORT_TELEMETRY_H
