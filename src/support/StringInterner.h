//===- support/StringInterner.h - Global string interning -------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide string interning. A Symbol is a pointer to the unique
/// canonical copy of a string: equal strings intern to the same pointer, so
/// symbol equality is a pointer compare and an Instruction stores one
/// machine word instead of an owning std::string (24+ bytes plus a heap
/// block per memory operand).
///
/// Interned storage is never freed; the population is tiny and long-lived
/// (array names, a handful per workload). The pool is guarded by a mutex so
/// parser/builder threads may intern concurrently; hot readers never lock.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SUPPORT_STRINGINTERNER_H
#define PIRA_SUPPORT_STRINGINTERNER_H

#include <string>

namespace pira {

/// An interned string: points at the unique canonical copy. Stable for the
/// life of the process; compare with == for string equality.
using Symbol = const std::string *;

/// Returns the canonical Symbol for \p S, interning it on first sight.
/// Thread-safe.
Symbol internString(const std::string &S);

/// The Symbol of the empty string (the default for non-memory
/// instructions). Never null. Thread-safe.
Symbol emptySymbol();

} // namespace pira

#endif // PIRA_SUPPORT_STRINGINTERNER_H
