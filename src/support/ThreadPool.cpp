//===- support/ThreadPool.cpp - Work-stealing thread pool -----------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/FaultInjection.h"
#include "support/Telemetry.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>

using namespace pira;

PIRA_STAT(NumDroppedTaskExceptions,
          "Secondary task exceptions dropped after the first was captured");

//===----------------------------------------------------------------------===//
// Per-task deadline watchdog
//===----------------------------------------------------------------------===//

namespace {

using Clock = std::chrono::steady_clock;

/// One armed deadline. Owned by the registry (not the arming thread) so
/// the watchdog can safely touch it even while the task unwinds.
struct DeadlineRecord {
  Clock::time_point At;
  std::atomic<bool> Expired{false};
};

/// The process-wide watchdog: a registry of armed deadlines and one
/// monitor thread that marks overruns. Intentionally leaked — the
/// detached monitor may outlive main(), so the state must never be
/// destroyed under it.
struct WatchdogState {
  std::mutex Mutex;
  std::condition_variable Changed;
  std::set<DeadlineRecord *> Active;
  std::vector<DeadlineRecord *> FreeList;
  bool MonitorRunning = false;

  void monitorLoop() {
    std::unique_lock<std::mutex> Lock(Mutex);
    while (true) {
      if (Active.empty()) {
        Changed.wait(Lock);
        continue;
      }
      Clock::time_point Earliest = Clock::time_point::max();
      for (DeadlineRecord *R : Active)
        if (!R->Expired.load(std::memory_order_relaxed) && R->At < Earliest)
          Earliest = R->At;
      if (Earliest == Clock::time_point::max()) {
        // Everything active is already marked; wait for change.
        Changed.wait(Lock);
        continue;
      }
      Changed.wait_until(Lock, Earliest);
      Clock::time_point Now = Clock::now();
      for (DeadlineRecord *R : Active)
        if (Now >= R->At)
          R->Expired.store(true, std::memory_order_relaxed);
    }
  }

  DeadlineRecord *arm(Clock::time_point At) {
    std::lock_guard<std::mutex> Lock(Mutex);
    DeadlineRecord *R;
    if (!FreeList.empty()) {
      R = FreeList.back();
      FreeList.pop_back();
    } else {
      R = new DeadlineRecord;
    }
    R->At = At;
    R->Expired.store(false, std::memory_order_relaxed);
    Active.insert(R);
    if (!MonitorRunning) {
      MonitorRunning = true;
      std::thread([this] { monitorLoop(); }).detach();
    }
    Changed.notify_all();
    return R;
  }

  void disarm(DeadlineRecord *R) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Active.erase(R);
    FreeList.push_back(R);
    Changed.notify_all();
  }
};

WatchdogState &watchdog() {
  static WatchdogState *W = new WatchdogState;
  return *W;
}

thread_local DeadlineRecord *CurrentDeadline = nullptr;

} // namespace

deadline::ScopedDeadline::ScopedDeadline(uint64_t BudgetMs)
    : Record(nullptr), Prev(CurrentDeadline) {
  if (BudgetMs == 0)
    return;
  DeadlineRecord *R =
      watchdog().arm(Clock::now() + std::chrono::milliseconds(BudgetMs));
  Record = R;
  CurrentDeadline = R;
}

deadline::ScopedDeadline::~ScopedDeadline() {
  if (Record == nullptr)
    return;
  CurrentDeadline = static_cast<DeadlineRecord *>(Prev);
  watchdog().disarm(static_cast<DeadlineRecord *>(Record));
}

bool pira::deadline::expired() {
  if (faultinject::shouldFire("budget.deadline"))
    return true;
  DeadlineRecord *R = CurrentDeadline;
  if (R == nullptr)
    return false;
  // The direct clock check makes expiry prompt even between watchdog
  // wakeups; the flag makes a stalled clock-free loop observable.
  return R->Expired.load(std::memory_order_relaxed) || Clock::now() >= R->At;
}

void pira::deadline::checkpoint() {
  if (expired())
    throw DeadlineExceededError();
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

unsigned ThreadPool::defaultJobCount() {
  if (const char *Raw = std::getenv("PIRA_JOBS")) {
    char *End = nullptr;
    long V = std::strtol(Raw, &End, 10);
    if (End != Raw && *End == '\0' && V > 0)
      return static_cast<unsigned>(V);
  }
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : HW;
}

ThreadPool::ThreadPool(unsigned NumWorkers) {
  if (NumWorkers == 0)
    NumWorkers = defaultJobCount();
  Queues.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Queues.push_back(std::make_unique<WorkQueue>());
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  try {
    wait();
  } catch (...) {
    // Destructors must not throw; an unobserved task failure dies here.
  }
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stop = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  size_t Target;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Pending;
    Target = NextQueue++ % Queues.size();
  }
  {
    std::lock_guard<std::mutex> Lock(Queues[Target]->Mutex);
    Queues[Target]->Tasks.push_back(std::move(Task));
  }
  WorkAvailable.notify_one();
}

bool ThreadPool::popTask(unsigned Self, std::function<void()> &Out) {
  // Own deque: newest first, for locality with tasks that spawn tasks.
  {
    WorkQueue &Q = *Queues[Self];
    std::lock_guard<std::mutex> Lock(Q.Mutex);
    if (!Q.Tasks.empty()) {
      Out = std::move(Q.Tasks.back());
      Q.Tasks.pop_back();
      return true;
    }
  }
  // Steal the oldest task of the first non-empty victim.
  for (size_t Offset = 1; Offset != Queues.size(); ++Offset) {
    WorkQueue &Q = *Queues[(Self + Offset) % Queues.size()];
    std::lock_guard<std::mutex> Lock(Q.Mutex);
    if (!Q.Tasks.empty()) {
      Out = std::move(Q.Tasks.front());
      Q.Tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::runTask(std::function<void()> &Task) {
  try {
    Task();
  } catch (...) {
    // Capture the first exception; later ones are dropped (the batch
    // driver catches per-function, so multiples here mean a direct pool
    // user — the first failure is the actionable one). Dropped
    // secondaries are still counted so a silent pile-up shows in the
    // stats report's counters section.
    std::lock_guard<std::mutex> Lock(ErrorMutex);
    if (!FirstError)
      FirstError = std::current_exception();
    else
      ++NumDroppedTaskExceptions;
  }
}

void ThreadPool::workerLoop(unsigned Self) {
  while (true) {
    std::function<void()> Task;
    if (popTask(Self, Task)) {
      runTask(Task);
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--Pending == 0)
        AllDone.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> Lock(Mutex);
    if (Stop)
      return;
    // Re-check under the lock: a task may have been submitted between
    // the failed pop and acquiring the lock, and its notify missed us.
    bool Empty = true;
    for (auto &Q : Queues) {
      std::lock_guard<std::mutex> QLock(Q->Mutex);
      Empty = Q->Tasks.empty();
      if (!Empty)
        break;
    }
    if (!Empty)
      continue;
    WorkAvailable.wait(Lock);
  }
}

void ThreadPool::wait() {
  // Help out instead of blocking: the waiter (often the main thread, or
  // a task waiting on subtasks) drains queues alongside the workers.
  unsigned Self = 0; // steal order does not matter for the helper
  while (true) {
    std::function<void()> Task;
    if (popTask(Self, Task)) {
      runTask(Task);
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--Pending == 0)
        AllDone.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> Lock(Mutex);
    AllDone.wait(Lock, [this] { return Pending == 0; });
    break;
  }
  // Every task finished; surface the first failure on the waiter.
  std::exception_ptr E;
  {
    std::lock_guard<std::mutex> Lock(ErrorMutex);
    std::swap(E, FirstError);
  }
  if (E)
    std::rethrow_exception(E);
}

void ThreadPool::parallelFor(unsigned N,
                             const std::function<void(unsigned)> &Body) {
  if (N == 0)
    return;
  if (numWorkers() == 1 || N == 1) {
    // Degenerate cases run inline: same observable effects, no handoff —
    // including exception behaviour (first failure reported, every
    // iteration still runs).
    std::exception_ptr E;
    for (unsigned I = 0; I != N; ++I) {
      try {
        Body(I);
      } catch (...) {
        if (!E)
          E = std::current_exception();
        else
          ++NumDroppedTaskExceptions;
      }
    }
    if (E)
      std::rethrow_exception(E);
    return;
  }
  // One task per index; the atomic cursor keeps per-task overhead tiny
  // relative to a compileBatch-sized body, and index identity (not
  // completion order) decides where results land.
  std::atomic<unsigned> Next{0};
  unsigned Tasks = std::min(N, numWorkers() * 4);
  for (unsigned T = 0; T != Tasks; ++T)
    submit([&Next, N, &Body] {
      for (unsigned I = Next.fetch_add(1, std::memory_order_relaxed); I < N;
           I = Next.fetch_add(1, std::memory_order_relaxed))
        Body(I);
    });
  wait();
}
