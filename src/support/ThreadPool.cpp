//===- support/ThreadPool.cpp - Work-stealing thread pool -----------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <atomic>
#include <cstdlib>

using namespace pira;

unsigned ThreadPool::defaultJobCount() {
  if (const char *Raw = std::getenv("PIRA_JOBS")) {
    char *End = nullptr;
    long V = std::strtol(Raw, &End, 10);
    if (End != Raw && *End == '\0' && V > 0)
      return static_cast<unsigned>(V);
  }
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : HW;
}

ThreadPool::ThreadPool(unsigned NumWorkers) {
  if (NumWorkers == 0)
    NumWorkers = defaultJobCount();
  Queues.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Queues.push_back(std::make_unique<WorkQueue>());
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  wait();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stop = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  size_t Target;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Pending;
    Target = NextQueue++ % Queues.size();
  }
  {
    std::lock_guard<std::mutex> Lock(Queues[Target]->Mutex);
    Queues[Target]->Tasks.push_back(std::move(Task));
  }
  WorkAvailable.notify_one();
}

bool ThreadPool::popTask(unsigned Self, std::function<void()> &Out) {
  // Own deque: newest first, for locality with tasks that spawn tasks.
  {
    WorkQueue &Q = *Queues[Self];
    std::lock_guard<std::mutex> Lock(Q.Mutex);
    if (!Q.Tasks.empty()) {
      Out = std::move(Q.Tasks.back());
      Q.Tasks.pop_back();
      return true;
    }
  }
  // Steal the oldest task of the first non-empty victim.
  for (size_t Offset = 1; Offset != Queues.size(); ++Offset) {
    WorkQueue &Q = *Queues[(Self + Offset) % Queues.size()];
    std::lock_guard<std::mutex> Lock(Q.Mutex);
    if (!Q.Tasks.empty()) {
      Out = std::move(Q.Tasks.front());
      Q.Tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(unsigned Self) {
  while (true) {
    std::function<void()> Task;
    if (popTask(Self, Task)) {
      Task();
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--Pending == 0)
        AllDone.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> Lock(Mutex);
    if (Stop)
      return;
    // Re-check under the lock: a task may have been submitted between
    // the failed pop and acquiring the lock, and its notify missed us.
    bool Empty = true;
    for (auto &Q : Queues) {
      std::lock_guard<std::mutex> QLock(Q->Mutex);
      Empty = Q->Tasks.empty();
      if (!Empty)
        break;
    }
    if (!Empty)
      continue;
    WorkAvailable.wait(Lock);
  }
}

void ThreadPool::wait() {
  // Help out instead of blocking: the waiter (often the main thread, or
  // a task waiting on subtasks) drains queues alongside the workers.
  unsigned Self = 0; // steal order does not matter for the helper
  while (true) {
    std::function<void()> Task;
    if (popTask(Self, Task)) {
      Task();
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--Pending == 0)
        AllDone.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> Lock(Mutex);
    if (Pending == 0)
      return;
    AllDone.wait(Lock, [this] { return Pending == 0; });
    return;
  }
}

void ThreadPool::parallelFor(unsigned N,
                             const std::function<void(unsigned)> &Body) {
  if (N == 0)
    return;
  if (numWorkers() == 1 || N == 1) {
    // Degenerate cases run inline: same observable effects, no handoff.
    for (unsigned I = 0; I != N; ++I)
      Body(I);
    return;
  }
  // One task per index; the atomic cursor keeps per-task overhead tiny
  // relative to a compileBatch-sized body, and index identity (not
  // completion order) decides where results land.
  std::atomic<unsigned> Next{0};
  unsigned Tasks = std::min(N, numWorkers() * 4);
  for (unsigned T = 0; T != Tasks; ++T)
    submit([&Next, N, &Body] {
      for (unsigned I = Next.fetch_add(1, std::memory_order_relaxed); I < N;
           I = Next.fetch_add(1, std::memory_order_relaxed))
        Body(I);
    });
  wait();
}
