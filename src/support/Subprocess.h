//===- support/Subprocess.h - Sandboxed child processes ---------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-isolation primitive under the batch driver's --isolate
/// mode: spawn a child (fork + execv), feed it stdin, capture stdout and
/// stderr, and report exactly how it ended — exit code, terminating
/// signal, or SIGKILL from the wall-clock watchdog. Resource caps are
/// applied in the child between fork and exec (setrlimit on address
/// space and CPU time), so a runaway allocation or a hot loop dies in
/// the sandbox instead of the worker that spawned it.
///
/// Failure taxonomy (what the batch driver maps onto ChildCrashed /
/// ChildKilled / ChildTimeout diagnostics):
///
///   * spawn failure — pipes, fork, or exec did not happen; returned as
///     an errored Expected. exec failures are detected exactly via a
///     close-on-exec status pipe, never confused with the child's own
///     exit codes.
///   * TimedOut — the wall-clock budget passed; the child was SIGKILLed
///     and Signal records the kill.
///   * Signal != 0 — the child died on a signal (its own SIGSEGV/SIGABRT,
///     the kernel's SIGKILL, SIGXCPU from the CPU rlimit, ...).
///   * otherwise — ExitCode is the child's _exit status.
///
/// Stdout/stderr are drained concurrently with the child (poll loop), so
/// a chatty child can never deadlock against a full pipe; stdin writing
/// is interleaved the same way and survives EPIPE (SIGPIPE is ignored
/// process-wide on first use). All of it is plain POSIX — no threads,
/// no globals beyond the one-time SIGPIPE disposition.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SUPPORT_SUBPROCESS_H
#define PIRA_SUPPORT_SUBPROCESS_H

#include "support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pira {

/// What to run and under which limits. Limits of 0 mean "none".
struct SubprocessOptions {
  std::vector<std::string> Argv; ///< Argv[0] is the executable path.
  std::string Input;             ///< Bytes written to the child's stdin.
  uint64_t TimeoutMs = 0;        ///< Wall-clock budget; SIGKILL on expiry.
  uint64_t MemoryLimitMB = 0;    ///< RLIMIT_AS cap, in MiB.
  uint64_t CpuLimitSec = 0;      ///< RLIMIT_CPU cap, in seconds.
};

/// How a spawned child ended. Exactly one of the three fates holds:
/// TimedOut (watchdog SIGKILL), Signal != 0 (died on a signal), or a
/// plain ExitCode.
struct SubprocessResult {
  int ExitCode = -1;     ///< _exit status when the child exited normally.
  int Signal = 0;        ///< Terminating signal, 0 when none.
  bool TimedOut = false; ///< The wall-clock budget expired first.
  std::string Stdout;
  std::string Stderr;
};

/// Runs \p Opts.Argv to completion (or the timeout). A returned value
/// means the child ran and was reaped; the Expected errors only for
/// spawn-level failures (pipe/fork/exec), which are the retryable class.
Expected<SubprocessResult> runSubprocess(const SubprocessOptions &Opts);

/// "SIGSEGV"-style name for \p Signal; "signal N" for unknown values.
std::string signalName(int Signal);

/// Absolute path of the running executable (/proc/self/exe), or "" when
/// the platform cannot say. pirac uses it to self-exec --worker children.
std::string currentExecutablePath();

} // namespace pira

#endif // PIRA_SUPPORT_SUBPROCESS_H
