//===- support/BitMatrix.h - Square boolean matrix --------------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A square boolean matrix built from BitVector rows. Used as the relation
/// representation for schedule-graph reachability (transitive closure) and
/// for dense undirected adjacency.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SUPPORT_BITMATRIX_H
#define PIRA_SUPPORT_BITMATRIX_H

#include "support/BitVector.h"

#include <cassert>
#include <set>
#include <vector>

namespace pira {

/// A square NxN boolean matrix with word-parallel row operations.
class BitMatrix {
public:
  BitMatrix() = default;

  /// Creates an all-zero \p N x \p N matrix.
  explicit BitMatrix(unsigned N) : N(N), Rows(N, BitVector(N)) {}

  /// Returns the number of rows (== columns).
  unsigned size() const { return N; }

  /// Reads entry (\p Row, \p Col).
  bool test(unsigned Row, unsigned Col) const {
    assert(Row < N && Col < N && "matrix index out of range");
    return Rows[Row].test(Col);
  }

  /// Sets entry (\p Row, \p Col) to one.
  void set(unsigned Row, unsigned Col) {
    assert(Row < N && Col < N && "matrix index out of range");
    Rows[Row].set(Col);
  }

  /// Clears entry (\p Row, \p Col).
  void reset(unsigned Row, unsigned Col) {
    assert(Row < N && Col < N && "matrix index out of range");
    Rows[Row].reset(Col);
  }

  /// Sets both (\p A, \p B) and (\p B, \p A); convenience for undirected use.
  void setSymmetric(unsigned A, unsigned B) {
    set(A, B);
    set(B, A);
  }

  /// Returns row \p Row as a bit vector over column indices.
  const BitVector &row(unsigned Row) const {
    assert(Row < N && "row index out of range");
    return Rows[Row];
  }

  /// Mutable access to row \p Row.
  BitVector &row(unsigned Row) {
    assert(Row < N && "row index out of range");
    return Rows[Row];
  }

  /// Replaces the matrix with its reflexive-free transitive closure.
  ///
  /// Runs word-parallel Warshall: for each intermediate K, every row that
  /// reaches K absorbs K's row. O(N^2 * N/64) bit operations; fine for the
  /// basic-block sizes (tens to low thousands of instructions) this library
  /// targets.
  void transitiveClosure() {
    for (unsigned K = 0; K != N; ++K) {
      const BitVector KRow = Rows[K];
      for (unsigned I = 0; I != N; ++I)
        if (Rows[I].test(K))
          Rows[I].unionWith(KRow);
    }
  }

  /// Reference implementation of transitiveClosure() over per-node
  /// std::set adjacency — the representation the closure used before the
  /// packed-bitset rewrite, retained as a differential-testing oracle
  /// (see the closure-equivalence tests and the set-vs-bitset benchmark).
  /// Not used on any production path. \returns the closed relation; the
  /// matrix itself is unchanged.
  BitMatrix transitiveClosureSetBased() const {
    std::vector<std::set<unsigned>> Reach(N);
    for (unsigned I = 0; I != N; ++I)
      for (int J = Rows[I].findFirst(); J != -1;
           J = Rows[I].findNext(static_cast<unsigned>(J)))
        Reach[I].insert(static_cast<unsigned>(J));
    for (unsigned K = 0; K != N; ++K) {
      const std::set<unsigned> KReach = Reach[K];
      for (unsigned I = 0; I != N; ++I)
        if (Reach[I].count(K))
          Reach[I].insert(KReach.begin(), KReach.end());
    }
    BitMatrix Out(N);
    for (unsigned I = 0; I != N; ++I)
      for (unsigned J : Reach[I])
        Out.set(I, J);
    return Out;
  }

  /// Makes the relation symmetric: M |= transpose(M).
  void symmetrize() {
    for (unsigned I = 0; I != N; ++I)
      for (int J = Rows[I].findFirst(); J != -1;
           J = Rows[I].findNext(static_cast<unsigned>(J)))
        Rows[static_cast<unsigned>(J)].set(I);
  }

  /// Complements every off-diagonal entry; the diagonal is forced to zero.
  ///
  /// This is exactly the paper's step from the constraint set Et to the
  /// false-dependence edge set Ef (pairs that may issue in the same cycle).
  void complementOffDiagonal() {
    for (unsigned I = 0; I != N; ++I) {
      Rows[I].flipAll();
      Rows[I].reset(I);
    }
  }

  /// Counts set entries over the whole matrix.
  unsigned count() const {
    unsigned Total = 0;
    for (const BitVector &Row : Rows)
      Total += Row.count();
    return Total;
  }

  bool operator==(const BitMatrix &RHS) const {
    return N == RHS.N && Rows == RHS.Rows;
  }

private:
  unsigned N = 0;
  std::vector<BitVector> Rows;
};

} // namespace pira

#endif // PIRA_SUPPORT_BITMATRIX_H
