//===- support/DotWriter.h - GraphViz emission helpers ----------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal helpers for dumping graphs in GraphViz DOT syntax. The figure
/// benchmarks use these to emit the paper's exhibits (schedule graph,
/// interference graph, parallelizable interference graph) for inspection.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SUPPORT_DOTWRITER_H
#define PIRA_SUPPORT_DOTWRITER_H

#include <ostream>
#include <string>
#include <vector>

namespace pira {

class UndirectedGraph;

/// Streams a DOT `graph` with one node per label and the given styling on
/// edges. Node I is labeled Labels[I].
class DotWriter {
public:
  /// Begins a named graph on \p OS.
  DotWriter(std::ostream &OS, const std::string &Name, bool Directed);

  /// Emits a node definition with an optional style attribute string.
  void node(unsigned Id, const std::string &Label,
            const std::string &Attrs = "");

  /// Emits an edge with an optional style attribute string.
  void edge(unsigned From, unsigned To, const std::string &Attrs = "");

  /// Emits all edges of \p G with a uniform attribute string.
  void allEdges(const UndirectedGraph &G, const std::string &Attrs = "");

  /// Closes the graph. Called automatically by the destructor.
  void finish();

  ~DotWriter();

private:
  std::ostream &OS;
  bool Directed;
  bool Finished = false;
};

} // namespace pira

#endif // PIRA_SUPPORT_DOTWRITER_H
