//===- support/StringInterner.cpp - Global string interning ---------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "support/StringInterner.h"

#include <mutex>
#include <set>

using namespace pira;

namespace {

/// Node-based set: element addresses are stable across inserts, which is
/// what makes handing out interior pointers sound.
struct InternPool {
  std::mutex Mu;
  std::set<std::string> Strings;

  Symbol intern(const std::string &S) {
    std::lock_guard<std::mutex> Lock(Mu);
    return &*Strings.insert(S).first;
  }
};

InternPool &pool() {
  static InternPool P;
  return P;
}

} // namespace

Symbol pira::internString(const std::string &S) { return pool().intern(S); }

Symbol pira::emptySymbol() {
  static Symbol Empty = internString(std::string());
  return Empty;
}
