//===- support/Subprocess.cpp - Sandboxed child processes -----------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "support/Subprocess.h"

#include "support/Io.h"
#include "support/Telemetry.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace pira;

PIRA_STAT(NumSubprocessSpawns, "Sandboxed child processes spawned");
PIRA_STAT(NumSubprocessTimeouts,
          "Sandboxed children SIGKILLed by the wall-clock watchdog");

PIRA_HIST(SubprocessSpawnLatency,
          "Pipe setup through fork and the exec-race handshake, per spawn");
PIRA_HIST(SubprocessTurnaroundLatency,
          "Whole child lifetime: spawn, I/O pumping, exit reap");

namespace {

using Clock = std::chrono::steady_clock;

Status spawnError(const std::string &What, int Err) {
  return Status::error(ErrorCode::Internal, "subprocess",
                       What + ": " + std::strerror(Err));
}

/// An owned file descriptor that closes itself, at most once.
struct Fd {
  int Raw = -1;
  ~Fd() { reset(); }
  void reset() {
    if (Raw != -1)
      ::close(Raw);
    Raw = -1;
  }
  /// Hands the descriptor to the caller (used across fork).
  int release() {
    int R = Raw;
    Raw = -1;
    return R;
  }
};

bool makePipe(Fd &ReadEnd, Fd &WriteEnd) {
  int P[2];
  if (::pipe(P) != 0)
    return false;
  ReadEnd.Raw = P[0];
  WriteEnd.Raw = P[1];
  return true;
}

void setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags != -1)
    ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
}

/// Child-side setup between fork and exec: async-signal-safe calls only.
[[noreturn]] void execChild(const SubprocessOptions &Opts,
                            char *const *Argv, int StdinFd, int StdoutFd,
                            int StderrFd, int StatusFd) {
  if (::dup2(StdinFd, 0) == -1 || ::dup2(StdoutFd, 1) == -1 ||
      ::dup2(StderrFd, 2) == -1)
    ::_exit(127);
  if (Opts.MemoryLimitMB != 0) {
    rlimit Lim;
    Lim.rlim_cur = Lim.rlim_max =
        static_cast<rlim_t>(Opts.MemoryLimitMB) * 1024 * 1024;
    ::setrlimit(RLIMIT_AS, &Lim);
  }
  if (Opts.CpuLimitSec != 0) {
    rlimit Lim;
    Lim.rlim_cur = Lim.rlim_max = static_cast<rlim_t>(Opts.CpuLimitSec);
    ::setrlimit(RLIMIT_CPU, &Lim);
  }
  ::execv(Argv[0], Argv);
  // exec failed: report errno through the CLOEXEC status pipe so the
  // parent can tell "exec never happened" from a child exiting 127.
  int Err = errno;
  ssize_t Ignored = ::write(StatusFd, &Err, sizeof(Err));
  (void)Ignored;
  ::_exit(127);
}

} // namespace

std::string pira::signalName(int Signal) {
  switch (Signal) {
  case SIGSEGV:
    return "SIGSEGV";
  case SIGABRT:
    return "SIGABRT";
  case SIGBUS:
    return "SIGBUS";
  case SIGILL:
    return "SIGILL";
  case SIGFPE:
    return "SIGFPE";
  case SIGTRAP:
    return "SIGTRAP";
  case SIGKILL:
    return "SIGKILL";
  case SIGTERM:
    return "SIGTERM";
  case SIGXCPU:
    return "SIGXCPU";
  case SIGPIPE:
    return "SIGPIPE";
  case SIGHUP:
    return "SIGHUP";
  case SIGINT:
    return "SIGINT";
  default:
    return "signal " + std::to_string(Signal);
  }
}

std::string pira::currentExecutablePath() {
  char Buf[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N <= 0)
    return std::string();
  Buf[N] = '\0';
  return std::string(Buf);
}

Expected<SubprocessResult> pira::runSubprocess(const SubprocessOptions &Opts) {
  PIRA_TIME_SCOPE("subprocess/run");
  telemetry::HistTimer Turnaround(SubprocessTurnaroundLatency);
  uint64_t SpawnStartNs = telemetry::monotonicNowNs();
  if (Opts.Argv.empty())
    return Status::error(ErrorCode::InvalidArgument, "subprocess",
                         "empty argv");

  // A child that stops reading must not SIGPIPE the whole worker; the
  // write loop handles EPIPE instead. (pirac main ignores it for the
  // whole process up front; this covers library users who call
  // runSubprocess directly.)
  io::ignoreSigpipe();

  Fd InR, InW, OutR, OutW, ErrR, ErrW, StatusR, StatusW;
  if (!makePipe(InR, InW) || !makePipe(OutR, OutW) || !makePipe(ErrR, ErrW) ||
      !makePipe(StatusR, StatusW))
    return spawnError("pipe failed", errno);
  // Every parent-side end is CLOEXEC: the fork gives the child copies of
  // them, and a child holding the write end of its *own* stdin pipe
  // would never see EOF there. StatusW is CLOEXEC by design — its
  // close-on-exec is the success signal.
  ::fcntl(InW.Raw, F_SETFD, FD_CLOEXEC);
  ::fcntl(OutR.Raw, F_SETFD, FD_CLOEXEC);
  ::fcntl(ErrR.Raw, F_SETFD, FD_CLOEXEC);
  ::fcntl(StatusR.Raw, F_SETFD, FD_CLOEXEC);
  ::fcntl(StatusW.Raw, F_SETFD, FD_CLOEXEC);

  std::vector<char *> Argv;
  Argv.reserve(Opts.Argv.size() + 1);
  for (const std::string &A : Opts.Argv)
    Argv.push_back(const_cast<char *>(A.c_str()));
  Argv.push_back(nullptr);

  pid_t Pid = ::fork();
  if (Pid < 0)
    return spawnError("fork failed", errno);
  if (Pid == 0) {
    // Child. Parent-end descriptors die with the exec (or the _exit).
    execChild(Opts, Argv.data(), InR.Raw, OutW.Raw, ErrW.Raw, StatusW.Raw);
  }
  ++NumSubprocessSpawns;

  // Parent: close the child's ends so EOFs propagate.
  InR.reset();
  OutW.reset();
  ErrW.reset();
  StatusW.reset();

  // The status pipe resolves the exec race first: CLOEXEC closes it with
  // zero bytes on success; an errno payload means exec itself failed.
  // readFull retries EINTR — a stray signal here must not make a failed
  // exec look like a successful spawn (a short read used to do exactly
  // that).
  {
    int ExecErrno = 0;
    ssize_t N = io::readFull(StatusR.Raw, &ExecErrno, sizeof(ExecErrno));
    if (N == static_cast<ssize_t>(sizeof(ExecErrno))) {
      int WStatus = 0;
      ::waitpid(Pid, &WStatus, 0);
      return spawnError("exec '" + Opts.Argv[0] + "' failed", ExecErrno);
    }
  }
  StatusR.reset();
  // The child is alive and exec'd past the race: that is the spawn cost.
  SubprocessSpawnLatency.record(telemetry::monotonicNowNs() - SpawnStartNs);

  setNonBlocking(InW.Raw);
  setNonBlocking(OutR.Raw);
  setNonBlocking(ErrR.Raw);

  SubprocessResult Res;
  size_t InPos = 0;
  if (Opts.Input.empty())
    InW.reset();
  Clock::time_point Deadline =
      Opts.TimeoutMs == 0
          ? Clock::time_point::max()
          : Clock::now() + std::chrono::milliseconds(Opts.TimeoutMs);
  bool Killed = false;
  bool Reaped = false;
  int WStatus = 0;

  auto DrainOne = [](Fd &F, std::string &Into) {
    if (F.Raw == -1)
      return;
    char Buf[4096];
    while (true) {
      ssize_t N = ::read(F.Raw, Buf, sizeof(Buf));
      if (N > 0) {
        Into.append(Buf, static_cast<size_t>(N));
        continue;
      }
      if (N == 0)
        F.reset(); // EOF
      // N < 0: EAGAIN (come back later) or a real error — either way
      // stop for now; a real error resolves once the child is reaped.
      return;
    }
  };

  while (true) {
    // Reap without blocking so a child that closed its pipes but hangs
    // on (or one we SIGKILLed) is still collected promptly.
    if (!Reaped) {
      pid_t W = ::waitpid(Pid, &WStatus, WNOHANG);
      if (W == Pid)
        Reaped = true;
    }
    if (Reaped && OutR.Raw == -1 && ErrR.Raw == -1)
      break;
    if (Reaped) {
      // Child gone: drain whatever is left, then stop. A grandchild
      // holding the pipes open must not keep us here forever.
      DrainOne(OutR, Res.Stdout);
      DrainOne(ErrR, Res.Stderr);
      break;
    }

    if (!Killed && Clock::now() >= Deadline) {
      ::kill(Pid, SIGKILL);
      Killed = true;
      Res.TimedOut = true;
      ++NumSubprocessTimeouts;
    }

    pollfd Fds[3];
    nfds_t N = 0;
    auto Add = [&](int Raw, short Events) {
      Fds[N].fd = Raw;
      Fds[N].events = Events;
      Fds[N].revents = 0;
      ++N;
    };
    if (InW.Raw != -1)
      Add(InW.Raw, POLLOUT);
    if (OutR.Raw != -1)
      Add(OutR.Raw, POLLIN);
    if (ErrR.Raw != -1)
      Add(ErrR.Raw, POLLIN);

    // Cap the poll so the waitpid/deadline checks above stay live even
    // with no pipe activity (a sleeping child produces neither).
    int WaitMs = 100;
    if (Deadline != Clock::time_point::max() && !Killed) {
      auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      Deadline - Clock::now())
                      .count();
      if (Left < WaitMs)
        WaitMs = Left < 0 ? 0 : static_cast<int>(Left);
    }
    ::poll(Fds, N, WaitMs);

    if (InW.Raw != -1) {
      ssize_t W = ::write(InW.Raw, Opts.Input.data() + InPos,
                          Opts.Input.size() - InPos);
      if (W > 0)
        InPos += static_cast<size_t>(W);
      else if (W < 0 && errno != EAGAIN && errno != EINTR)
        InW.reset(); // EPIPE and friends: the child stopped listening.
      if (InPos == Opts.Input.size())
        InW.reset(); // All written; EOF tells the child input is done.
    }
    DrainOne(OutR, Res.Stdout);
    DrainOne(ErrR, Res.Stderr);
  }

  if (!Reaped)
    ::waitpid(Pid, &WStatus, 0);

  if (WIFSIGNALED(WStatus))
    Res.Signal = WTERMSIG(WStatus);
  else if (WIFEXITED(WStatus))
    Res.ExitCode = WEXITSTATUS(WStatus);
  return Res;
}
