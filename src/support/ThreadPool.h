//===- support/ThreadPool.h - Work-stealing thread pool ---------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A work-stealing thread pool for the batch-compilation driver. Every
/// worker owns a deque: new tasks are dealt round-robin across the
/// deques, owners pop from the back (LIFO, cache-warm), and an idle
/// worker steals from the front of a victim's deque (FIFO, oldest work
/// first). The pool itself imposes no ordering on task completion —
/// callers that need determinism (compileBatch does) write results into
/// pre-sized slots indexed by submission order.
///
/// Worker-count selection: an explicit count wins, else the PIRA_JOBS
/// environment variable, else the hardware concurrency.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SUPPORT_THREADPOOL_H
#define PIRA_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pira {

/// A fixed-size work-stealing pool. Construction spawns the workers;
/// destruction drains remaining tasks and joins them.
class ThreadPool {
public:
  /// Spawns \p NumWorkers workers; 0 means defaultJobCount().
  explicit ThreadPool(unsigned NumWorkers = 0);

  /// Waits for every submitted task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Returns the number of worker threads.
  unsigned numWorkers() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues \p Task. Tasks must not throw; a task may submit further
  /// tasks. Safe to call from any thread.
  void submit(std::function<void()> Task);

  /// Blocks until every task submitted so far (including tasks those
  /// tasks spawned) has finished. The calling thread helps by stealing
  /// work while it waits, so wait() from inside a task cannot deadlock
  /// the pool.
  void wait();

  /// Runs Body(I) for every I in [0, N), distributed over the pool, and
  /// blocks until all iterations finish. \p Body must be safe to call
  /// concurrently for distinct indices.
  void parallelFor(unsigned N, const std::function<void(unsigned)> &Body);

  /// The worker count used when none is given: PIRA_JOBS when set to a
  /// positive integer, otherwise std::thread::hardware_concurrency()
  /// (at least 1).
  static unsigned defaultJobCount();

private:
  /// One worker's deque plus its lock. Stealing keeps contention low by
  /// touching one victim at a time.
  struct WorkQueue {
    std::mutex Mutex;
    std::deque<std::function<void()>> Tasks;
  };

  void workerLoop(unsigned Self);
  /// Pops work for worker \p Self: own deque back first, then steals
  /// front-of-deque round-robin from the others. Returns false when every
  /// deque is empty.
  bool popTask(unsigned Self, std::function<void()> &Out);

  std::vector<std::unique_ptr<WorkQueue>> Queues;
  std::vector<std::thread> Workers;

  std::mutex Mutex; ///< Guards Pending / Stop transitions for the CVs.
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;
  size_t Pending = 0; ///< Submitted but not yet finished tasks.
  size_t NextQueue = 0;
  bool Stop = false;
};

} // namespace pira

#endif // PIRA_SUPPORT_THREADPOOL_H
