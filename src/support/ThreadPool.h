//===- support/ThreadPool.h - Work-stealing thread pool ---------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A work-stealing thread pool for the batch-compilation driver. Every
/// worker owns a deque: new tasks are dealt round-robin across the
/// deques, owners pop from the back (LIFO, cache-warm), and an idle
/// worker steals from the front of a victim's deque (FIFO, oldest work
/// first). The pool itself imposes no ordering on task completion —
/// callers that need determinism (compileBatch does) write results into
/// pre-sized slots indexed by submission order.
///
/// Fault isolation: a task that throws does not take down its worker or
/// the process. The first exception is captured and rethrown from the
/// next wait() (or parallelFor) on the waiting thread; every other task
/// still runs to completion, so one poisoned task cannot starve the
/// rest of a batch. Secondary exceptions are dropped by design, but
/// never silently: each one bumps the NumDroppedTaskExceptions
/// telemetry counter, which stats reports surface.
///
/// Per-task watchdog: deadline::ScopedDeadline arms a cooperative
/// wall-clock budget for the current task. A shared watchdog thread
/// (lazily started, process-lifetime) marks overrunning tasks, and
/// long-running phases poll deadline::expired() — or call
/// deadline::checkpoint(), which throws DeadlineExceededError — at loop
/// boundaries to unwind. Cancellation is cooperative: the watchdog
/// never kills a thread, it only flips a flag the task must observe.
///
/// Worker-count selection: an explicit count wins, else the PIRA_JOBS
/// environment variable, else the hardware concurrency.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SUPPORT_THREADPOOL_H
#define PIRA_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pira {

namespace deadline {

/// Thrown by checkpoint() when the armed deadline has passed.
class DeadlineExceededError : public std::exception {
public:
  const char *what() const noexcept override {
    return "task deadline exceeded";
  }
};

/// Arms a wall-clock deadline of \p BudgetMs for the current thread
/// (0 arms nothing). Deadlines nest; the innermost one is consulted.
/// Registration makes the task visible to the watchdog thread, which
/// marks it expired once the clock passes the deadline.
class ScopedDeadline {
public:
  explicit ScopedDeadline(uint64_t BudgetMs);
  ~ScopedDeadline();
  ScopedDeadline(const ScopedDeadline &) = delete;
  ScopedDeadline &operator=(const ScopedDeadline &) = delete;

private:
  void *Record; ///< Opaque registry entry (null when BudgetMs was 0).
  void *Prev;   ///< Enclosing deadline to restore.
};

/// True when the innermost armed deadline has passed (watchdog flag or
/// direct clock check) or the "budget.deadline" fault site fires. Cheap
/// enough for per-round polling; false when nothing is armed.
bool expired();

/// Throws DeadlineExceededError when expired(). Phases call this at
/// loop boundaries so overrunning work unwinds to the task guard.
void checkpoint();

} // namespace deadline

/// A fixed-size work-stealing pool. Construction spawns the workers;
/// destruction drains remaining tasks and joins them.
class ThreadPool {
public:
  /// Spawns \p NumWorkers workers; 0 means defaultJobCount().
  explicit ThreadPool(unsigned NumWorkers = 0);

  /// Waits for every submitted task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Returns the number of worker threads.
  unsigned numWorkers() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues \p Task; a task may submit further tasks. Safe to call
  /// from any thread. A task that throws is captured, not fatal — see
  /// wait().
  void submit(std::function<void()> Task);

  /// Blocks until every task submitted so far (including tasks those
  /// tasks spawned) has finished. The calling thread helps by stealing
  /// work while it waits, so wait() from inside a task cannot deadlock
  /// the pool. If any task threw since the last wait(), the first
  /// captured exception is rethrown here — after all tasks finished, so
  /// an exception never abandons queued work.
  void wait();

  /// Runs Body(I) for every I in [0, N), distributed over the pool, and
  /// blocks until all iterations finish. \p Body must be safe to call
  /// concurrently for distinct indices. A throwing iteration does not
  /// stop the others; the first exception is rethrown on return.
  void parallelFor(unsigned N, const std::function<void(unsigned)> &Body);

  /// The worker count used when none is given: PIRA_JOBS when set to a
  /// positive integer, otherwise std::thread::hardware_concurrency()
  /// (at least 1).
  static unsigned defaultJobCount();

private:
  /// One worker's deque plus its lock. Stealing keeps contention low by
  /// touching one victim at a time.
  struct WorkQueue {
    std::mutex Mutex;
    std::deque<std::function<void()>> Tasks;
  };

  void workerLoop(unsigned Self);
  /// Pops work for worker \p Self: own deque back first, then steals
  /// front-of-deque round-robin from the others. Returns false when every
  /// deque is empty.
  bool popTask(unsigned Self, std::function<void()> &Out);
  /// Runs \p Task, capturing the first exception into FirstError.
  void runTask(std::function<void()> &Task);

  std::vector<std::unique_ptr<WorkQueue>> Queues;
  std::vector<std::thread> Workers;

  std::mutex Mutex; ///< Guards Pending / Stop transitions for the CVs.
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;
  size_t Pending = 0; ///< Submitted but not yet finished tasks.
  size_t NextQueue = 0;
  bool Stop = false;

  std::mutex ErrorMutex;         ///< Guards FirstError.
  std::exception_ptr FirstError; ///< First task exception since last wait().
};

} // namespace pira

#endif // PIRA_SUPPORT_THREADPOOL_H
