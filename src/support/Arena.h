//===- support/Arena.h - Bump-pointer allocation ----------------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena for analysis scratch data with a common lifetime:
/// CSR adjacency arrays, per-component worklists, chain tables. Everything
/// allocated from one arena is freed together when the arena is destroyed,
/// so the per-function hot loop pays one amortized malloc per chunk instead
/// of one per tiny array, and neighboring allocations stay cache-adjacent.
///
/// Restricted to trivially destructible types: the arena never runs
/// destructors.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SUPPORT_ARENA_H
#define PIRA_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace pira {

/// A chunked bump allocator. Not thread-safe; use one arena per analysis.
class Arena {
public:
  explicit Arena(size_t ChunkBytes = 64 * 1024) : ChunkBytes(ChunkBytes) {}

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Allocates uninitialized storage for \p Count objects of type T.
  template <typename T> T *allocate(size_t Count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    if (Count == 0)
      return nullptr;
    return static_cast<T *>(allocateBytes(Count * sizeof(T), alignof(T)));
  }

  /// Allocates storage for \p Count objects of type T, value-initialized
  /// (zeroed for arithmetic types).
  template <typename T> T *allocateZeroed(size_t Count) {
    T *P = allocate<T>(Count);
    for (size_t I = 0; I != Count; ++I)
      new (P + I) T();
    return P;
  }

  /// Total bytes handed out (diagnostics only; excludes alignment waste).
  size_t bytesAllocated() const { return TotalAllocated; }

private:
  void *allocateBytes(size_t Bytes, size_t Align) {
    uintptr_t P = (Cur + Align - 1) & ~(uintptr_t(Align) - 1);
    if (P + Bytes > End) {
      size_t Need = Bytes + Align;
      size_t Size = Need > ChunkBytes ? Need : ChunkBytes;
      Chunks.push_back(std::make_unique<char[]>(Size));
      Cur = reinterpret_cast<uintptr_t>(Chunks.back().get());
      End = Cur + Size;
      P = (Cur + Align - 1) & ~(uintptr_t(Align) - 1);
    }
    Cur = P + Bytes;
    TotalAllocated += Bytes;
    return reinterpret_cast<void *>(P);
  }

  size_t ChunkBytes;
  uintptr_t Cur = 0;
  uintptr_t End = 0;
  size_t TotalAllocated = 0;
  std::vector<std::unique_ptr<char[]>> Chunks;
};

} // namespace pira

#endif // PIRA_SUPPORT_ARENA_H
