//===- support/FaultInjection.cpp - Deterministic fault harness -----------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include "support/Telemetry.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

using namespace pira;
using namespace pira::faultinject;

PIRA_STAT(NumFaultsFired, "Fault-injection sites that fired");

namespace {

/// Armed sites. Reads are guarded by StateMutex but gated behind the
/// Armed flag, so the idle cost is one relaxed load.
struct HarnessState {
  std::mutex Mutex;
  std::vector<std::pair<std::string, uint64_t>> Sites;
  bool Configured = false; // once true, PIRA_FAULT is never (re)read
};

HarnessState &state() {
  static HarnessState *S = new HarnessState; // leaked: alive at exit
  return *S;
}

std::atomic<bool> Armed{false};
std::atomic<bool> EnvChecked{false};

thread_local uint64_t ThreadFaultKey = 0;

/// Parses "site:n[,site:n...]" into \p Out; false with \p Error set on
/// the first malformed entry or unknown site.
bool parseSpec(std::string_view Spec,
               std::vector<std::pair<std::string, uint64_t>> &Out,
               std::string &Error) {
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string_view Entry = Spec.substr(
        Pos, Comma == std::string_view::npos ? std::string_view::npos
                                             : Comma - Pos);
    Pos = Comma == std::string_view::npos ? Spec.size() : Comma + 1;
    if (Entry.empty())
      continue;
    size_t Colon = Entry.find(':');
    if (Colon == std::string_view::npos || Colon == 0 ||
        Colon + 1 == Entry.size()) {
      Error = "malformed fault spec entry '" + std::string(Entry) +
              "' (expected site:n)";
      return false;
    }
    std::string Site(Entry.substr(0, Colon));
    bool Known = false;
    for (const char *S : knownSites())
      if (Site == S) {
        Known = true;
        break;
      }
    if (!Known) {
      Error = "unknown fault site '" + Site + "'";
      return false;
    }
    uint64_t N = 0;
    for (char C : Entry.substr(Colon + 1)) {
      if (C < '0' || C > '9') {
        Error = "bad fault count in '" + std::string(Entry) + "'";
        return false;
      }
      N = N * 10 + static_cast<uint64_t>(C - '0');
    }
    if (N == 0) {
      Error = "fault count must be positive in '" + std::string(Entry) + "'";
      return false;
    }
    Out.emplace_back(std::move(Site), N);
  }
  return true;
}

/// Adopts PIRA_FAULT exactly once if nothing configured the harness
/// explicitly. A malformed env spec disarms (the CLI path validates and
/// reports; library users get safe-off).
void adoptEnvOnce(HarnessState &S) {
  if (S.Configured)
    return;
  S.Configured = true;
  const char *Raw = std::getenv("PIRA_FAULT");
  if (Raw == nullptr || *Raw == '\0')
    return;
  std::string Error;
  std::vector<std::pair<std::string, uint64_t>> Sites;
  if (parseSpec(Raw, Sites, Error)) {
    S.Sites = std::move(Sites);
    Armed.store(!S.Sites.empty(), std::memory_order_relaxed);
  }
}

} // namespace

const std::vector<const char *> &pira::faultinject::knownSites() {
  static const std::vector<const char *> Sites = {
      "parse.enter",    "strategy.entry", "alloc.pinter",
      "alloc.chaitin",  "alloc.spillall", "verify.final",
      "sched.final",    "sim.measure",    "budget.instructions",
      "budget.deadline", "net.write.short", "net.frame.torn",
      "net.read.stall", "net.reset",      "net.payload.corrupt",
      "crash.segv",     "crash.abort",    "crash.oom",
      "crash.hang",
  };
  return Sites;
}

bool pira::faultinject::configure(std::string_view Spec, std::string &Error) {
  std::vector<std::pair<std::string, uint64_t>> Sites;
  if (!parseSpec(Spec, Sites, Error))
    return false;
  HarnessState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Configured = true;
  S.Sites = std::move(Sites);
  Armed.store(!S.Sites.empty(), std::memory_order_relaxed);
  return true;
}

void pira::faultinject::reset() {
  HarnessState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Configured = true;
  S.Sites.clear();
  Armed.store(false, std::memory_order_relaxed);
}

bool pira::faultinject::enabled() {
  return Armed.load(std::memory_order_relaxed);
}

bool pira::faultinject::shouldFire(const char *Site) {
  HarnessState &S = state();
  if (!Armed.load(std::memory_order_relaxed)) {
    // Idle fast path — but give the env one chance to arm us.
    if (EnvChecked.load(std::memory_order_acquire))
      return false;
    std::lock_guard<std::mutex> Lock(S.Mutex);
    adoptEnvOnce(S);
    EnvChecked.store(true, std::memory_order_release);
    if (!Armed.load(std::memory_order_relaxed))
      return false;
  }
  std::lock_guard<std::mutex> Lock(S.Mutex);
  for (const auto &[Name, N] : S.Sites)
    if (Name == Site && ThreadFaultKey % N == 0) {
      ++NumFaultsFired;
      return true;
    }
  return false;
}

void pira::faultinject::maybeThrow(const char *Site) {
  if (shouldFire(Site))
    throw FaultInjectedError(Site);
}

void pira::faultinject::maybeHardFault() {
  if (!enabled() && EnvChecked.load(std::memory_order_acquire))
    return; // idle fast path; shouldFire below re-checks and adopts env
  if (shouldFire("crash.segv")) {
    ::raise(SIGSEGV);
    // A blocked/ignored SIGSEGV must still be a hard death, not a
    // silently surviving compile.
    std::abort();
  }
  if (shouldFire("crash.abort"))
    std::abort();
  if (shouldFire("crash.oom")) {
    // A runaway allocator, bounded so the emulation can never hurt the
    // host: touch a few MiB the way a leak would, then die the way the
    // kernel's OOM killer ends the real thing. Deterministic under any
    // allocator or sanitizer, unlike a true rlimit-driven death.
    std::vector<std::unique_ptr<char[]>> Hoard;
    for (int I = 0; I != 8; ++I) {
      Hoard.push_back(std::make_unique<char[]>(1 << 20));
      std::memset(Hoard.back().get(), 0x5a, 1 << 20);
    }
    ::raise(SIGKILL);
    std::abort(); // unreachable unless SIGKILL is somehow not delivered
  }
  if (shouldFire("crash.hang")) {
    // No deadline::checkpoint() ever runs here — this models the tight
    // loop the cooperative watchdog cannot reach. Sleeping keeps the
    // hang cheap; only SIGKILL from outside ends it.
    while (true)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

uint64_t pira::faultinject::currentKey() { return ThreadFaultKey; }

std::string pira::faultinject::currentSpec() {
  HarnessState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  adoptEnvOnce(S);
  EnvChecked.store(true, std::memory_order_release);
  std::string Out;
  for (const auto &[Name, N] : S.Sites) {
    if (!Out.empty())
      Out += ',';
    Out += Name;
    Out += ':';
    Out += std::to_string(N);
  }
  return Out;
}

ScopedKey::ScopedKey(uint64_t Key) : Prev(ThreadFaultKey) {
  ThreadFaultKey = Key;
}

ScopedKey::~ScopedKey() { ThreadFaultKey = Prev; }
