//===- support/Hash.h - Stable content hashing (SHA-256) --------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dependency-free SHA-256 (FIPS 180-4) for content-addressed keys.
/// The compilation cache fingerprints canonical printed IR plus every
/// compile-relevant knob through this; the digest doubles as the on-disk
/// file name, so it must be stable across platforms, compilers, and
/// processes — which rules out std::hash and friends. Not a performance
/// hash: use it where collisions must be practically impossible and the
/// value must mean the same thing forever.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_SUPPORT_HASH_H
#define PIRA_SUPPORT_HASH_H

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace pira {
namespace hash {

/// Incremental SHA-256. update() as many times as needed, then digest()
/// (which finalizes; further updates require a fresh object).
class Sha256 {
public:
  Sha256() { reset(); }

  /// Restores the initial state; discards any absorbed input.
  void reset() {
    State = {0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
             0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u};
    TotalBytes = 0;
    BufLen = 0;
  }

  /// Absorbs \p Len bytes at \p Data.
  void update(const void *Data, size_t Len) {
    const uint8_t *P = static_cast<const uint8_t *>(Data);
    TotalBytes += Len;
    if (BufLen != 0) {
      size_t Take = Len < 64 - BufLen ? Len : 64 - BufLen;
      std::memcpy(Buf + BufLen, P, Take);
      BufLen += Take;
      P += Take;
      Len -= Take;
      if (BufLen == 64) {
        processBlock(Buf);
        BufLen = 0;
      }
    }
    while (Len >= 64) {
      processBlock(P);
      P += 64;
      Len -= 64;
    }
    if (Len != 0) {
      std::memcpy(Buf, P, Len);
      BufLen = Len;
    }
  }

  void update(std::string_view S) { update(S.data(), S.size()); }

  /// Finalizes and returns the 32-byte digest.
  std::array<uint8_t, 32> digest() {
    uint64_t BitLen = TotalBytes * 8;
    uint8_t Pad = 0x80;
    update(&Pad, 1);
    uint8_t Zero = 0;
    while (BufLen != 56)
      update(&Zero, 1);
    uint8_t LenBytes[8];
    for (int I = 0; I != 8; ++I)
      LenBytes[I] = static_cast<uint8_t>(BitLen >> (56 - 8 * I));
    update(LenBytes, 8);
    std::array<uint8_t, 32> Out;
    for (int I = 0; I != 8; ++I) {
      Out[4 * I + 0] = static_cast<uint8_t>(State[I] >> 24);
      Out[4 * I + 1] = static_cast<uint8_t>(State[I] >> 16);
      Out[4 * I + 2] = static_cast<uint8_t>(State[I] >> 8);
      Out[4 * I + 3] = static_cast<uint8_t>(State[I]);
    }
    return Out;
  }

  /// Lower-case hex digest of the finalized state.
  std::string hexDigest() {
    static const char *Digits = "0123456789abcdef";
    std::array<uint8_t, 32> D = digest();
    std::string Out;
    Out.reserve(64);
    for (uint8_t B : D) {
      Out += Digits[B >> 4];
      Out += Digits[B & 0xF];
    }
    return Out;
  }

  /// One-shot convenience: the hex digest of \p Data.
  static std::string hashHex(std::string_view Data) {
    Sha256 H;
    H.update(Data);
    return H.hexDigest();
  }

private:
  static uint32_t rotr(uint32_t X, unsigned N) {
    return (X >> N) | (X << (32 - N));
  }

  void processBlock(const uint8_t *Block) {
    static constexpr uint32_t K[64] = {
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
        0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
        0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
        0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
        0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
        0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
        0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
        0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
        0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
        0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
        0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
        0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

    uint32_t W[64];
    for (int I = 0; I != 16; ++I)
      W[I] = (static_cast<uint32_t>(Block[4 * I]) << 24) |
             (static_cast<uint32_t>(Block[4 * I + 1]) << 16) |
             (static_cast<uint32_t>(Block[4 * I + 2]) << 8) |
             static_cast<uint32_t>(Block[4 * I + 3]);
    for (int I = 16; I != 64; ++I) {
      uint32_t S0 =
          rotr(W[I - 15], 7) ^ rotr(W[I - 15], 18) ^ (W[I - 15] >> 3);
      uint32_t S1 =
          rotr(W[I - 2], 17) ^ rotr(W[I - 2], 19) ^ (W[I - 2] >> 10);
      W[I] = W[I - 16] + S0 + W[I - 7] + S1;
    }

    uint32_t A = State[0], B = State[1], C = State[2], D = State[3];
    uint32_t E = State[4], F = State[5], G = State[6], H = State[7];
    for (int I = 0; I != 64; ++I) {
      uint32_t S1 = rotr(E, 6) ^ rotr(E, 11) ^ rotr(E, 25);
      uint32_t Ch = (E & F) ^ (~E & G);
      uint32_t T1 = H + S1 + Ch + K[I] + W[I];
      uint32_t S0 = rotr(A, 2) ^ rotr(A, 13) ^ rotr(A, 22);
      uint32_t Maj = (A & B) ^ (A & C) ^ (B & C);
      uint32_t T2 = S0 + Maj;
      H = G;
      G = F;
      F = E;
      E = D + T1;
      D = C;
      C = B;
      B = A;
      A = T1 + T2;
    }
    State[0] += A;
    State[1] += B;
    State[2] += C;
    State[3] += D;
    State[4] += E;
    State[5] += F;
    State[6] += G;
    State[7] += H;
  }

  std::array<uint32_t, 8> State;
  uint64_t TotalBytes = 0;
  uint8_t Buf[64];
  size_t BufLen = 0;
};

} // namespace hash
} // namespace pira

#endif // PIRA_SUPPORT_HASH_H
