//===- machine/MachineConfig.cpp - Textual machine descriptions -----------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "machine/MachineConfig.h"

#include <array>
#include <cctype>
#include <sstream>
#include <vector>

using namespace pira;

namespace {

/// Tokenized "key=value" pair.
struct KeyValue {
  std::string Key;
  std::string Value;
};

/// Splits a line into whitespace-separated words, honoring '#' comments.
std::vector<std::string> splitWords(const std::string &Line) {
  std::vector<std::string> Words;
  std::string Current;
  for (char C : Line) {
    if (C == '#')
      break;
    if (std::isspace(static_cast<unsigned char>(C))) {
      if (!Current.empty())
        Words.push_back(std::move(Current));
      Current.clear();
      continue;
    }
    Current.push_back(C);
  }
  if (!Current.empty())
    Words.push_back(std::move(Current));
  return Words;
}

/// Splits "key=value"; returns false when '=' is missing.
bool splitKeyValue(const std::string &Word, KeyValue &Out) {
  size_t Eq = Word.find('=');
  if (Eq == std::string::npos || Eq == 0 || Eq + 1 == Word.size())
    return false;
  Out.Key = Word.substr(0, Eq);
  Out.Value = Word.substr(Eq + 1);
  return true;
}

/// Parses a non-negative integer; returns false on junk.
bool parseUnsigned(const std::string &Text, unsigned &Out) {
  if (Text.empty())
    return false;
  unsigned Value = 0;
  for (char C : Text) {
    if (!std::isdigit(static_cast<unsigned char>(C)))
      return false;
    Value = Value * 10 + static_cast<unsigned>(C - '0');
  }
  Out = Value;
  return true;
}

/// Maps a unit-class name to its kind; returns false when unknown.
bool unitKindByName(const std::string &Name, UnitKind &Out) {
  for (unsigned K = 0; K != NumUnitKinds; ++K)
    if (Name == unitKindName(static_cast<UnitKind>(K))) {
      Out = static_cast<UnitKind>(K);
      return true;
    }
  return false;
}

/// Maps an opcode mnemonic; returns false when unknown.
bool opcodeByName(const std::string &Name, Opcode &Out) {
  for (unsigned I = 0; I != NumOpcodes; ++I)
    if (Name == opcodeName(static_cast<Opcode>(I))) {
      Out = static_cast<Opcode>(I);
      return true;
    }
  return false;
}

} // namespace

std::optional<MachineModel> pira::parseMachineModel(std::string_view Text,
                                                    std::string &Error) {
  Error.clear();
  std::string Name = "custom";
  unsigned Width = 1;
  unsigned Regs = 8;
  std::array<unsigned, NumUnitKinds> Units;
  Units.fill(1);
  std::vector<std::pair<Opcode, unsigned>> Latencies;

  std::istringstream In{std::string(Text)};
  std::string Line;
  unsigned LineNo = 0;
  auto Fail = [&](const std::string &Msg) {
    Error = "line " + std::to_string(LineNo) + ": " + Msg;
    return std::nullopt;
  };

  while (std::getline(In, Line)) {
    ++LineNo;
    std::vector<std::string> Words = splitWords(Line);
    if (Words.empty())
      continue;
    const std::string &Directive = Words[0];
    if (Directive == "machine") {
      if (Words.size() != 2)
        return Fail("expected 'machine <name>'");
      Name = Words[1];
    } else if (Directive == "width") {
      if (Words.size() != 2 || !parseUnsigned(Words[1], Width) ||
          Width == 0)
        return Fail("expected 'width <positive integer>'");
    } else if (Directive == "regs") {
      if (Words.size() != 2 || !parseUnsigned(Words[1], Regs))
        return Fail("expected 'regs <integer>'");
    } else if (Directive == "units") {
      for (size_t I = 1; I != Words.size(); ++I) {
        KeyValue KV;
        UnitKind Kind;
        unsigned Count = 0;
        if (!splitKeyValue(Words[I], KV) ||
            !unitKindByName(KV.Key, Kind) ||
            !parseUnsigned(KV.Value, Count) || Count == 0)
          return Fail("bad unit spec '" + Words[I] +
                      "' (want class=count)");
        Units[static_cast<unsigned>(Kind)] = Count;
      }
    } else if (Directive == "latency") {
      for (size_t I = 1; I != Words.size(); ++I) {
        KeyValue KV;
        Opcode Op;
        unsigned Cycles = 0;
        if (!splitKeyValue(Words[I], KV) || !opcodeByName(KV.Key, Op) ||
            !parseUnsigned(KV.Value, Cycles) || Cycles == 0)
          return Fail("bad latency spec '" + Words[I] +
                      "' (want opcode=cycles)");
        Latencies.emplace_back(Op, Cycles);
      }
    } else {
      return Fail("unknown directive '" + Directive + "'");
    }
  }

  MachineModel M(Name, Units, Width, Regs);
  for (const auto &[Op, Cycles] : Latencies)
    M.setLatency(Op, Cycles);
  return M;
}

std::string pira::machineModelToString(const MachineModel &M) {
  std::ostringstream OS;
  OS << "machine " << M.name() << '\n'
     << "width " << M.issueWidth() << '\n'
     << "regs " << M.numPhysRegs() << '\n'
     << "units";
  for (unsigned K = 0; K != NumUnitKinds; ++K)
    OS << ' ' << unitKindName(static_cast<UnitKind>(K)) << '='
       << M.units(static_cast<UnitKind>(K));
  OS << '\n';
  // Only emit latencies that differ from the opcode defaults.
  bool AnyLatency = false;
  for (unsigned I = 0; I != NumOpcodes; ++I) {
    Opcode Op = static_cast<Opcode>(I);
    if (M.latency(Op) != opcodeInfo(Op).DefaultLatency) {
      OS << (AnyLatency ? " " : "latency ") << opcodeName(Op) << '='
         << M.latency(Op);
      AnyLatency = true;
    }
  }
  if (AnyLatency)
    OS << '\n';
  return OS.str();
}
