//===- machine/MachineModel.h - Superscalar machine description -*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's machine model: a RISC processor comprising a collection of
/// functional units that can each execute one instruction per cycle, a
/// bounded issue width, a finite register file, and per-opcode latencies.
/// Preset factories cover the machines the paper names (a single-issue
/// pipeline, the Example-2 two-arithmetic-unit machine, MIPS R3000 and IBM
/// RS/6000 style three-unit superscalars) plus a wider VLIW-ish design for
/// sweeps.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_MACHINE_MACHINEMODEL_H
#define PIRA_MACHINE_MACHINEMODEL_H

#include "ir/Opcode.h"

#include <array>
#include <cassert>
#include <string>

namespace pira {

/// A parameterized in-order superscalar machine.
class MachineModel {
public:
  /// Builds a machine with \p UnitCounts functional units per class, issue
  /// width \p IssueWidth, and \p NumPhysRegs allocatable registers.
  /// Latencies start from each opcode's default.
  MachineModel(std::string Name,
               std::array<unsigned, NumUnitKinds> UnitCounts,
               unsigned IssueWidth, unsigned NumPhysRegs);

  /// Returns the model's display name.
  const std::string &name() const { return Name; }

  /// Returns the number of functional units of class \p Kind.
  unsigned units(UnitKind Kind) const {
    return UnitCounts[static_cast<unsigned>(Kind)];
  }

  /// Returns the maximum number of instructions issued per cycle.
  unsigned issueWidth() const { return IssueWidth; }

  /// Returns the number of allocatable physical registers.
  unsigned numPhysRegs() const { return NumPhysRegs; }

  /// Overrides the register-file size (used by register-count sweeps).
  void setNumPhysRegs(unsigned N) { NumPhysRegs = N; }

  /// Returns the issue-to-result latency of \p Op in cycles (at least 1).
  unsigned latency(Opcode Op) const {
    return Latencies[static_cast<unsigned>(Op)];
  }

  /// Overrides the latency of one opcode.
  void setLatency(Opcode Op, unsigned Cycles) {
    assert(Cycles >= 1 && "latency must be at least one cycle");
    Latencies[static_cast<unsigned>(Op)] = Cycles;
  }

  /// Sets every opcode's latency to \p Cycles (the paper's examples reason
  /// in unit latencies).
  void setUniformLatency(unsigned Cycles);

  /// True when at most one instruction of \p Kind can issue per cycle; the
  /// paper represents exactly these contentions as pairwise machine
  /// constraint edges.
  bool isSingleUnit(UnitKind Kind) const { return units(Kind) == 1; }

  /// \name Preset machines
  /// @{

  /// Single-issue pipelined uniprocessor (one unit of each class, width 1).
  static MachineModel scalar(unsigned Regs = 8);

  /// The machine of the paper's Example 2: one fixed-point and one
  /// floating-point arithmetic unit plus a single fetching (memory) unit,
  /// unit latencies throughout so "scheduled together" means same cycle.
  static MachineModel paperTwoUnit(unsigned Regs = 8);

  /// MIPS R3000 flavor: single-issue-per-class, realistic latencies.
  static MachineModel mipsR3000(unsigned Regs = 16);

  /// IBM RISC System/6000 flavor: fixed, float and branch units issuing
  /// concurrently, realistic latencies.
  static MachineModel rs6000(unsigned Regs = 16);

  /// A 4-wide machine with doubled integer and memory units, for sweeps
  /// exercising the multi-unit (footnote 3) path.
  static MachineModel vliw4(unsigned Regs = 16);

  /// @}

private:
  std::string Name;
  std::array<unsigned, NumUnitKinds> UnitCounts;
  unsigned IssueWidth;
  unsigned NumPhysRegs;
  std::array<unsigned, NumOpcodes> Latencies;
};

} // namespace pira

#endif // PIRA_MACHINE_MACHINEMODEL_H
