//===- machine/MachineModel.cpp - Superscalar machine description ---------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "machine/MachineModel.h"

using namespace pira;

MachineModel::MachineModel(std::string Name,
                           std::array<unsigned, NumUnitKinds> UnitCounts,
                           unsigned IssueWidth, unsigned NumPhysRegs)
    : Name(std::move(Name)), UnitCounts(UnitCounts), IssueWidth(IssueWidth),
      NumPhysRegs(NumPhysRegs) {
  assert(IssueWidth >= 1 && "machine must issue at least one instruction");
  for (unsigned I = 0; I != NumOpcodes; ++I)
    Latencies[I] = opcodeInfo(static_cast<Opcode>(I)).DefaultLatency;
}

void MachineModel::setUniformLatency(unsigned Cycles) {
  assert(Cycles >= 1 && "latency must be at least one cycle");
  for (unsigned &L : Latencies)
    L = Cycles;
}

MachineModel MachineModel::scalar(unsigned Regs) {
  return MachineModel("scalar", {1, 1, 1, 1, 1}, /*IssueWidth=*/1, Regs);
}

MachineModel MachineModel::paperTwoUnit(unsigned Regs) {
  MachineModel M("paper-two-unit", {1, 1, 1, 1, 2}, /*IssueWidth=*/4,
                 Regs);
  M.setUniformLatency(1);
  return M;
}

MachineModel MachineModel::mipsR3000(unsigned Regs) {
  return MachineModel("mips-r3000", {1, 1, 1, 1, 1}, /*IssueWidth=*/2,
                      Regs);
}

MachineModel MachineModel::rs6000(unsigned Regs) {
  MachineModel M("rs6000", {1, 1, 1, 1, 2}, /*IssueWidth=*/3, Regs);
  M.setLatency(Opcode::FAdd, 2);
  M.setLatency(Opcode::FMul, 2);
  M.setLatency(Opcode::FMA, 2);
  M.setLatency(Opcode::Load, 2);
  return M;
}

MachineModel MachineModel::vliw4(unsigned Regs) {
  return MachineModel("vliw4", {2, 1, 2, 1, 2}, /*IssueWidth=*/4, Regs);
}
