//===- machine/MachineConfig.h - Textual machine descriptions ---*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small textual format for machine descriptions, so tools (pirac) and
/// experiments can target new cores without recompiling:
///
/// \code
///   machine dsp-dual-fpu
///   width 4
///   regs 6
///   units fixed=1 float=2 mem=1 branch=1 move=2
///   latency load=3 fmul=2
/// \endcode
///
/// Lines may appear in any order after `machine`; omitted unit classes
/// default to one unit, omitted latencies to the opcode defaults, and
/// '#' starts a comment.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_MACHINE_MACHINECONFIG_H
#define PIRA_MACHINE_MACHINECONFIG_H

#include "machine/MachineModel.h"

#include <optional>
#include <string>
#include <string_view>

namespace pira {

/// Parses \p Text into a machine model.
///
/// \returns the model, or std::nullopt with a "line N: message"
/// diagnostic in \p Error.
std::optional<MachineModel> parseMachineModel(std::string_view Text,
                                              std::string &Error);

/// Renders \p M in the textual format (round-trippable).
std::string machineModelToString(const MachineModel &M);

} // namespace pira

#endif // PIRA_MACHINE_MACHINECONFIG_H
