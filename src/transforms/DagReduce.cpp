//===- transforms/DagReduce.cpp - Pre-closure DAG reduction ---------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
//
// Soundness notes for the two non-obvious steps:
//
// Chain contraction. A chain is a maximal path v1 -> ... -> vk with
// outdeg(vi) == 1 for i < k and indeg(v(i+1)) == 1 for i >= 1. External
// in-edges can only enter at v1 (every later member's single in-edge is
// internal) and external out-edges can only leave from vk (every earlier
// member's single out-edge is internal). Reachability through the chain is
// therefore fully described by: vi reaches {v(i+1)..vk} plus everything vk
// reaches, and anything reaching v1 reaches all members.
//
// Transitive-edge strip. In a DAG, edge (u, v) is redundant iff some w has
// u -> w and w -> v in the *original* edge set; removing all such edges
// simultaneously preserves reachability. Induction over the topological
// order of the witness w: the 2-path u -> w -> v survives as a path because
// each of its edges is either kept or itself redundant with a witness that
// is strictly earlier in topological order between the same endpoints, and
// the recursion terminates at kept edges.
//
// Contracted-graph closure. Super-nodes are numbered by their head (= min
// member) node id. Every original edge satisfies From < To, external
// out-edges leave a chain only at its tail, and external in-edges enter
// only at the head, so a contracted edge A -> B implies
// min(A) <= tail(A) < head(B) = min(B): super-node order is topological.
// One reverse sweep then closes the DAG with a single row-union per edge.
//
//===----------------------------------------------------------------------===//

#include "transforms/DagReduce.h"

#include "support/Arena.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>

using namespace pira;
using namespace pira::dagreduce;

namespace {

/// Union-find over node ids with path halving; used for the weakly
/// connected component split.
unsigned findRoot(std::vector<unsigned> &Parent, unsigned X) {
  while (Parent[X] != X) {
    Parent[X] = Parent[Parent[X]];
    X = Parent[X];
  }
  return X;
}

/// Everything one component task needs, carved out of shared read-only
/// arrays before the (possibly parallel) close phase.
struct ComponentWork {
  const unsigned *Members;                     ///< Global ids, ascending.
  unsigned NumMembers;
  const std::pair<unsigned, unsigned> *Edges;  ///< Global-id endpoint pairs.
  unsigned NumEdges;
};

/// Per-component slice of the reduction stats, merged serially afterwards
/// so the parallel path stays deterministic and unsynchronized.
struct ComponentStats {
  unsigned Chains = 0;
  unsigned SuperNodes = 0;
  unsigned StrippedEdges = 0;
};

/// Closes one weakly connected component into the disjoint row set
/// {Out.row(g) : g in Members}. LocalIdx maps global node id -> index in
/// the component's member list (precomputed, read-only here).
ComponentStats closeComponent(const ComponentWork &W,
                              const std::vector<unsigned> &LocalIdx,
                              unsigned N, BitMatrix &Out) {
  ComponentStats CS;
  unsigned M = W.NumMembers;
  if (M <= 1) {
    // A singleton reaches nothing (edges to a peeled sink are handled by
    // the caller).
    CS.SuperNodes = M;
    return CS;
  }

  // All scratch shares one arena: freed together, allocated contiguously.
  Arena Scratch;

  // Local out-CSR plus degrees and the unique-predecessor table the chain
  // walk needs. Edge order within a node's list is ascending (the caller
  // sorted the global edge list), which keeps everything deterministic.
  unsigned *OutDeg = Scratch.allocateZeroed<unsigned>(M);
  unsigned *InDeg = Scratch.allocateZeroed<unsigned>(M);
  unsigned *ThePred = Scratch.allocate<unsigned>(M);
  for (unsigned E = 0; E != W.NumEdges; ++E) {
    unsigned U = LocalIdx[W.Edges[E].first];
    unsigned V = LocalIdx[W.Edges[E].second];
    ++OutDeg[U];
    if (++InDeg[V] == 1)
      ThePred[V] = U;
  }
  unsigned *SuccOff = Scratch.allocate<unsigned>(M + 1);
  SuccOff[0] = 0;
  for (unsigned V = 0; V != M; ++V)
    SuccOff[V + 1] = SuccOff[V] + OutDeg[V];
  unsigned *SuccIdx = Scratch.allocate<unsigned>(W.NumEdges);
  {
    unsigned *Fill = Scratch.allocate<unsigned>(M);
    std::copy(SuccOff, SuccOff + M, Fill);
    for (unsigned E = 0; E != W.NumEdges; ++E) {
      unsigned U = LocalIdx[W.Edges[E].first];
      SuccIdx[Fill[U]++] = LocalIdx[W.Edges[E].second];
    }
  }

  // Chain contraction. Heads are visited in ascending local id order, so
  // super-node numbering is ascending in head id — a topological order of
  // the contracted DAG (see file header). ChainNext links members in chain
  // order; NoNext terminates.
  constexpr unsigned NoNext = ~0u;
  unsigned *SuperOf = Scratch.allocate<unsigned>(M);
  std::fill(SuperOf, SuperOf + M, NoNext);
  unsigned *ChainNext = Scratch.allocate<unsigned>(M);
  std::fill(ChainNext, ChainNext + M, NoNext);
  // Upper bound M supers.
  unsigned *SuperHead = Scratch.allocate<unsigned>(M);
  unsigned NumSupers = 0;
  for (unsigned V = 0; V != M; ++V) {
    bool IsHead = !(InDeg[V] == 1 && OutDeg[ThePred[V]] == 1);
    if (!IsHead)
      continue;
    unsigned S = NumSupers++;
    SuperHead[S] = V;
    SuperOf[V] = S;
    unsigned Cur = V;
    while (OutDeg[Cur] == 1) {
      unsigned Next = SuccIdx[SuccOff[Cur]];
      if (InDeg[Next] != 1)
        break;
      SuperOf[Next] = S;
      ChainNext[Cur] = Next;
      Cur = Next;
    }
    if (ChainNext[V] != NoNext)
      ++CS.Chains;
  }
  assert(NumSupers >= 1 && "component with edges has at least one super");
  CS.SuperNodes = NumSupers;

  // Contracted edge set with the redundant-transitive-edge strip. S holds
  // super adjacency, T its transpose; edge (a, b) is redundant iff some c
  // has a -> c and c -> b, i.e. the a-row meets the b-predecessor-row.
  BitMatrix S(NumSupers), T(NumSupers);
  for (unsigned E = 0; E != W.NumEdges; ++E) {
    unsigned A = SuperOf[LocalIdx[W.Edges[E].first]];
    unsigned B = SuperOf[LocalIdx[W.Edges[E].second]];
    if (A == B)
      continue;
    assert(A < B && "contracted order must stay topological");
    S.set(A, B);
    T.set(B, A);
  }
  // Survivor lists, built in ascending (a, b); union order does not matter
  // for the closure but determinism costs nothing here.
  unsigned *KeptOff = Scratch.allocateZeroed<unsigned>(NumSupers + 1);
  std::vector<std::pair<unsigned, unsigned>> Kept;
  for (unsigned A = 0; A != NumSupers; ++A) {
    const BitVector &ARow = S.row(A);
    for (int B = ARow.findFirst(); B != -1;
         B = ARow.findNext(static_cast<unsigned>(B))) {
      if (ARow.intersects(T.row(static_cast<unsigned>(B))))
        ++CS.StrippedEdges;
      else
        Kept.push_back({A, static_cast<unsigned>(B)});
    }
  }
  for (const auto &E : Kept)
    ++KeptOff[E.first + 1];
  for (unsigned A = 0; A != NumSupers; ++A)
    KeptOff[A + 1] += KeptOff[A];

  // Reverse-topological closure over super-nodes: each super's reach row
  // (over *global* node ids) is the union of every kept successor's member
  // set and reach row. One row union per kept edge.
  std::vector<BitVector> Reach(NumSupers);
  for (unsigned SIdx = NumSupers; SIdx-- != 0;) {
    BitVector Row(N);
    for (unsigned K = KeptOff[SIdx]; K != KeptOff[SIdx + 1]; ++K) {
      unsigned B = Kept[K].second;
      for (unsigned Mem = SuperHead[B]; Mem != NoNext; Mem = ChainNext[Mem])
        Row.set(W.Members[Mem]);
      Row.unionWith(Reach[B]);
    }
    Reach[SIdx] = std::move(Row);
  }

  // Expansion: the chain tail's row is the super's reach row; walking the
  // chain backwards, each member additionally reaches its own successor.
  std::vector<unsigned> ChainGlobals;
  for (unsigned SIdx = 0; SIdx != NumSupers; ++SIdx) {
    ChainGlobals.clear();
    for (unsigned Mem = SuperHead[SIdx]; Mem != NoNext; Mem = ChainNext[Mem])
      ChainGlobals.push_back(W.Members[Mem]);
    BitVector Acc = std::move(Reach[SIdx]);
    Out.row(ChainGlobals.back()) = Acc;
    for (unsigned I = static_cast<unsigned>(ChainGlobals.size()) - 1;
         I-- != 0;) {
      Acc.set(ChainGlobals[I + 1]);
      Out.row(ChainGlobals[I]) = Acc;
    }
  }
  return CS;
}

} // namespace

BitMatrix dagreduce::reducedClosure(
    unsigned N, const std::vector<std::pair<unsigned, unsigned>> &EdgesIn,
    ThreadPool *Pool, ReduceStats *Stats) {
  BitMatrix Out(N);
  ReduceStats Local;
  Local.Nodes = N;
  if (N == 0) {
    if (Stats)
      *Stats = Local;
    return Out;
  }

  // Dedup and order the edge list; everything downstream keys off it.
  std::vector<std::pair<unsigned, unsigned>> Edges(EdgesIn);
  std::sort(Edges.begin(), Edges.end());
  Edges.erase(std::unique(Edges.begin(), Edges.end()), Edges.end());
  Local.Edges = static_cast<unsigned>(Edges.size());
#ifndef NDEBUG
  for (const auto &E : Edges)
    assert(E.first < E.second && E.second < N &&
           "dagreduce requires From < To < N (topological node order)");
#endif

  // Step 1: peel the universal sink. The block terminator receives a
  // Control edge from every other node; its closure column is all ones and
  // its row all zeros, so it only inflates the component split (everything
  // becomes one component through the sink).
  unsigned Limit = N;
  std::vector<unsigned> InDeg(N, 0);
  for (const auto &E : Edges)
    ++InDeg[E.second];
  if (N >= 2 && InDeg[N - 1] == N - 1) {
    Local.PeeledSink = true;
    Limit = N - 1;
    Edges.erase(std::remove_if(Edges.begin(), Edges.end(),
                               [N](const std::pair<unsigned, unsigned> &E) {
                                 return E.second == N - 1;
                               }),
                Edges.end());
  }

  // Step 2: weakly connected components over the remaining nodes.
  std::vector<unsigned> Parent(Limit);
  for (unsigned I = 0; I != Limit; ++I)
    Parent[I] = I;
  for (const auto &E : Edges) {
    unsigned A = findRoot(Parent, E.first);
    unsigned B = findRoot(Parent, E.second);
    if (A != B)
      Parent[std::max(A, B)] = std::min(A, B);
  }
  // Components numbered by first (= minimum) member id; LocalIdx maps a
  // global node to its rank inside its component's ascending member list.
  constexpr unsigned None = ~0u;
  std::vector<unsigned> CompOf(Limit), CompIdxOfRoot(Limit, None);
  std::vector<unsigned> MemberCount;
  for (unsigned I = 0; I != Limit; ++I) {
    unsigned Root = findRoot(Parent, I);
    if (CompIdxOfRoot[Root] == None) {
      CompIdxOfRoot[Root] = static_cast<unsigned>(MemberCount.size());
      MemberCount.push_back(0);
    }
    CompOf[I] = CompIdxOfRoot[Root];
  }
  unsigned NumComps = static_cast<unsigned>(MemberCount.size());
  Local.Components = NumComps;
  std::vector<unsigned> LocalIdx(Limit);
  for (unsigned I = 0; I != Limit; ++I)
    LocalIdx[I] = MemberCount[CompOf[I]]++;
  // Member lists (CSR over components, ascending ids by construction).
  std::vector<unsigned> MemberOff(NumComps + 1, 0);
  for (unsigned C = 0; C != NumComps; ++C)
    MemberOff[C + 1] = MemberOff[C] + MemberCount[C];
  std::vector<unsigned> Members(Limit);
  for (unsigned I = 0; I != Limit; ++I)
    Members[MemberOff[CompOf[I]] + LocalIdx[I]] = I;
  // Edge lists per component (both endpoints share a component by
  // construction); stable bucketing preserves the sorted order.
  std::vector<unsigned> EdgeOff(NumComps + 1, 0);
  for (const auto &E : Edges)
    ++EdgeOff[CompOf[E.first] + 1];
  for (unsigned C = 0; C != NumComps; ++C)
    EdgeOff[C + 1] += EdgeOff[C];
  std::vector<std::pair<unsigned, unsigned>> CompEdges(Edges.size());
  {
    std::vector<unsigned> Fill(EdgeOff.begin(), EdgeOff.end() - 1);
    for (const auto &E : Edges)
      CompEdges[Fill[CompOf[E.first]]++] = E;
  }

  // Steps 3-5 run per component; every component writes only its own
  // members' rows, so the parallel path produces the identical matrix.
  std::vector<ComponentStats> PerComp(NumComps);
  auto RunOne = [&](unsigned C) {
    ComponentWork W{Members.data() + MemberOff[C], MemberCount[C],
                    CompEdges.data() + EdgeOff[C], EdgeOff[C + 1] - EdgeOff[C]};
    PerComp[C] = closeComponent(W, LocalIdx, N, Out);
  };
  bool RunParallel = Pool != nullptr && NumComps > 1 && Limit >= 64;
  if (RunParallel)
    Pool->parallelFor(NumComps, RunOne);
  else
    for (unsigned C = 0; C != NumComps; ++C)
      RunOne(C);
  for (const ComponentStats &CS : PerComp) {
    Local.Chains += CS.Chains;
    Local.SuperNodes += CS.SuperNodes;
    Local.StrippedEdges += CS.StrippedEdges;
  }

  // Peeled sink column: every other node reaches the terminator directly.
  if (Local.PeeledSink)
    for (unsigned I = 0; I + 1 < N; ++I)
      Out.row(I).set(N - 1);

  if (Stats)
    *Stats = Local;
  return Out;
}
