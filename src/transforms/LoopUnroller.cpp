//===- transforms/LoopUnroller.cpp - Counted-loop unrolling ---------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "transforms/LoopUnroller.h"

#include "analysis/Liveness.h"
#include "ir/Function.h"

#include <cassert>
#include <map>
#include <optional>

using namespace pira;

namespace {

/// The recognized canonical loop.
struct CountedLoop {
  unsigned Block;
  Reg Induction;
  Reg StepReg;
  Reg BoundReg;
  int64_t Start;
  int64_t Step;
  int64_t Bound;
  unsigned BodyEnd; ///< Index of the induction update (body is [0, BodyEnd)).
};

/// Finds the unique constant (LoadImm) definition of \p R outside block
/// \p LoopBlock; returns nullopt when R has any other definition.
std::optional<int64_t> uniqueConstantDef(const Function &F, Reg R,
                                         unsigned LoopBlock,
                                         bool AllowLoopDef) {
  std::optional<int64_t> Value;
  for (unsigned B = 0, E = F.numBlocks(); B != E; ++B)
    for (unsigned I = 0, IE = F.block(B).size(); I != IE; ++I) {
      const Instruction &Inst = F.block(B).inst(I);
      if (!Inst.hasDef() || Inst.def() != R)
        continue;
      if (B == LoopBlock && AllowLoopDef)
        continue; // the in-loop update; accounted for separately
      if (Inst.opcode() != Opcode::LoadImm || Value.has_value())
        return std::nullopt;
      Value = Inst.imm();
    }
  return Value;
}

/// Pattern-matches the canonical counted loop in block \p B.
std::optional<CountedLoop> matchLoop(const Function &F, unsigned B) {
  const BasicBlock &BB = F.block(B);
  unsigned N = BB.size();
  if (N < 3)
    return std::nullopt;
  const Instruction &Br = BB.inst(N - 1);
  if (Br.opcode() != Opcode::CondBr || Br.targets()[0] != B ||
      Br.targets()[1] == B)
    return std::nullopt;
  const Instruction &Cmp = BB.inst(N - 2);
  if (Cmp.opcode() != Opcode::CmpLt || Cmp.def() != Br.uses()[0])
    return std::nullopt;
  const Instruction &Update = BB.inst(N - 3);
  if (Update.opcode() != Opcode::Add || Update.uses().size() != 2 ||
      Update.def() != Update.uses()[0] ||
      Update.def() != Cmp.uses()[0])
    return std::nullopt;

  CountedLoop L;
  L.Block = B;
  L.Induction = Update.def();
  L.StepReg = Update.uses()[1];
  L.BoundReg = Cmp.uses()[1];
  L.BodyEnd = N - 3;

  // All three controlling values must be visible constants; the
  // induction may additionally be written by the in-loop update.
  std::optional<int64_t> Start =
      uniqueConstantDef(F, L.Induction, B, /*AllowLoopDef=*/true);
  std::optional<int64_t> Step =
      uniqueConstantDef(F, L.StepReg, B, /*AllowLoopDef=*/false);
  std::optional<int64_t> Bound =
      uniqueConstantDef(F, L.BoundReg, B, /*AllowLoopDef=*/false);
  if (!Start || !Step || !Bound)
    return std::nullopt;
  // The induction and the guard must not be recomputed inside the body.
  for (unsigned I = 0; I != L.BodyEnd; ++I) {
    const Instruction &Inst = BB.inst(I);
    if (Inst.hasDef() && (Inst.def() == L.Induction ||
                          Inst.def() == L.StepReg ||
                          Inst.def() == L.BoundReg))
      return std::nullopt;
  }
  L.Start = *Start;
  L.Step = *Step;
  L.Bound = *Bound;
  return L;
}

} // namespace

bool pira::unrollCountedLoop(Function &F, unsigned BlockIdx,
                             unsigned Factor) {
  assert(Factor >= 1 && "unroll factor must be positive");
  assert(!F.isAllocated() && "unrolling runs on symbolic code");
  if (Factor == 1)
    return true;
  std::optional<CountedLoop> L = matchLoop(F, BlockIdx);
  if (!L)
    return false;
  // Exactness: the trip count must divide evenly.
  int64_t Span = L->Bound - L->Start;
  int64_t Chunk = L->Step * static_cast<int64_t>(Factor);
  if (L->Step <= 0 || Span <= 0 || Span % Chunk != 0)
    return false;

  // Registers carried around the back edge keep their names in every
  // copy; everything else defined in the body is renamed per copy so the
  // copies stay independent for the scheduler.
  Liveness Live(F);
  const BasicBlock &BB = F.block(BlockIdx);
  auto IsCarried = [&](Reg R) { return Live.isLiveIn(BlockIdx, R); };

  std::vector<Instruction> NewBody;
  for (unsigned Copy = 0; Copy != Factor; ++Copy) {
    std::map<Reg, Reg> Rename;
    for (unsigned I = 0; I != L->BodyEnd; ++I) {
      Instruction Inst = BB.inst(I);
      for (unsigned Op = 0, OE = static_cast<unsigned>(Inst.uses().size());
           Op != OE; ++Op) {
        auto It = Rename.find(Inst.uses()[Op]);
        if (It != Rename.end())
          Inst.setUse(Op, It->second);
      }
      if (Inst.hasDef() && Copy != 0 && !IsCarried(Inst.def())) {
        Reg Fresh = F.makeReg();
        Rename[Inst.def()] = Fresh;
        Inst.setDef(Fresh);
      }
      NewBody.push_back(std::move(Inst));
    }
    // The induction update closes each copy.
    NewBody.push_back(BB.inst(L->BodyEnd));
  }
  NewBody.push_back(BB.inst(L->BodyEnd + 1)); // guard
  NewBody.push_back(BB.inst(L->BodyEnd + 2)); // branch
  F.block(BlockIdx).instructions() = std::move(NewBody);
  return true;
}

unsigned pira::unrollAllLoops(Function &F, unsigned Factor) {
  unsigned Done = 0;
  for (unsigned B = 0, E = F.numBlocks(); B != E; ++B)
    if (unrollCountedLoop(F, B, Factor))
      ++Done;
  return Factor == 1 ? 0 : Done;
}
