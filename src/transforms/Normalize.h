//===- transforms/Normalize.h - One register per value ----------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renames every operand to its web, producing the paper's assumed input
/// form: "register based intermediate code where an infinite number of
/// symbolic registers is assumed (one symbolic register per value)".
/// Code that arrives with reused registers — hand-written text, output
/// of other compilers — gains spurious anti/output dependences in its
/// schedule graph; after normalization only the paper-sanctioned reuse
/// remains (a compound web keeps one name across all of its merged
/// definitions, e.g. loop-carried updates and if/else merges), so Et
/// again contains exactly the real constraints.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_TRANSFORMS_NORMALIZE_H
#define PIRA_TRANSFORMS_NORMALIZE_H

namespace pira {

class Function;

/// Rewrites \p F (symbolic form) so register k names web k.
/// \returns the number of operand slots whose register changed.
unsigned normalizeWebNames(Function &F);

} // namespace pira

#endif // PIRA_TRANSFORMS_NORMALIZE_H
