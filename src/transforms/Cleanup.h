//===- transforms/Cleanup.h - DCE and copy propagation ----------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two classic cleanups over symbolic code, run after transformations
/// like unrolling or hoisting leave dead temporaries and redundant
/// moves:
///
///   * dead code elimination — deletes pure value-producing instructions
///     whose register is never read anywhere (iterated to a fixed
///     point; loads are pure in this machine model, stores and
///     terminators are never touched);
///   * block-local copy propagation — forwards `d = copy s` sources to
///     subsequent readers of d within the block while neither d nor s is
///     redefined, turning most copies dead.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_TRANSFORMS_CLEANUP_H
#define PIRA_TRANSFORMS_CLEANUP_H

namespace pira {

class Function;

/// Removes never-read pure definitions. \returns instructions deleted.
unsigned eliminateDeadCode(Function &F);

/// Forwards copy sources within blocks. \returns operands rewritten.
unsigned propagateCopies(Function &F);

} // namespace pira

#endif // PIRA_TRANSFORMS_CLEANUP_H
