//===- transforms/DagReduce.h - Pre-closure DAG reduction -------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantics-preserving DAG reduction applied before transitive closure.
/// The closure behind the paper's PIG construction is O(n^2 * n/w) Warshall
/// over the whole schedule graph; this library shrinks the problem first —
/// the countermove pasched's sched-transform library demonstrates for
/// expensive scheduling phases:
///
///   1. Peel the universal terminator sink (the Control edges make the
///      block terminator a successor of every node; its closure column is
///      known without computing anything).
///   2. Split the remainder into weakly connected components; each closes
///      independently (optionally in parallel on a thread pool).
///   3. Collapse single-entry/single-exit chains into super-nodes.
///   4. Strip redundant transitive edges from the contracted DAG.
///   5. Close the contracted DAG by one reverse-topological sweep of
///      word-parallel row unions — O(E * n/w), not O(n^2 * n/w) — then
///      expand super-node rows back to member rows.
///
/// The input must satisfy the schedule-graph invariant From < To for every
/// edge (node order is a topological order); DependenceGraph guarantees it
/// by construction. Under that precondition the result is bit-identical to
/// BitMatrix::transitiveClosure on the same edge set — reachability is
/// unique — so callers keep byte-identical reports whether or not the
/// reduction runs, and regardless of the thread pool.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_TRANSFORMS_DAGREDUCE_H
#define PIRA_TRANSFORMS_DAGREDUCE_H

#include "support/BitMatrix.h"

#include <utility>
#include <vector>

namespace pira {

class ThreadPool;

namespace dagreduce {

/// What the reduction found; summed into telemetry counters by callers.
struct ReduceStats {
  unsigned Nodes = 0;         ///< Input vertex count.
  unsigned Edges = 0;         ///< Input edge count after dedup.
  bool PeeledSink = false;    ///< Universal terminator sink peeled.
  unsigned Components = 0;    ///< Weakly connected components (sink excluded).
  unsigned Chains = 0;        ///< Collapsed chains of two or more nodes.
  unsigned SuperNodes = 0;    ///< Vertices remaining after contraction.
  unsigned StrippedEdges = 0; ///< Redundant transitive edges removed.
};

/// Computes the reflexive-free transitive closure of the DAG with \p N
/// vertices and edge list \p Edges (duplicates allowed; every edge must
/// satisfy From < To < N). Equivalent to building the adjacency BitMatrix
/// and running transitiveClosure(), but via the reduction pipeline above.
///
/// \p Pool, when non-null, closes independent components in parallel;
/// every component writes a disjoint set of result rows, so the output is
/// identical to the serial path. \p Stats, when non-null, receives what
/// the reduction found.
BitMatrix reducedClosure(unsigned N,
                         const std::vector<std::pair<unsigned, unsigned>> &Edges,
                         ThreadPool *Pool = nullptr,
                         ReduceStats *Stats = nullptr);

} // namespace dagreduce
} // namespace pira

#endif // PIRA_TRANSFORMS_DAGREDUCE_H
