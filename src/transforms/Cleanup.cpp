//===- transforms/Cleanup.cpp - DCE and copy propagation ------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "transforms/Cleanup.h"

#include "ir/Function.h"

#include <cassert>
#include <map>
#include <vector>

using namespace pira;

unsigned pira::eliminateDeadCode(Function &F) {
  assert(!F.isAllocated() && "cleanups run on symbolic code");
  unsigned Deleted = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Total read count per register across the whole function.
    std::vector<unsigned> Reads(F.numRegs(), 0);
    for (const BasicBlock &BB : F.blocks())
      for (const Instruction &I : BB.instructions())
        for (Reg U : I.uses())
          ++Reads[U];

    for (BasicBlock &BB : F.blocks()) {
      std::vector<Instruction> Kept;
      Kept.reserve(BB.size());
      for (Instruction &I : BB.instructions()) {
        bool Dead = I.hasDef() && !I.isMemory() && Reads[I.def()] == 0;
        // Loads are pure here (wrap-addressed array reads), so a dead
        // load may go too.
        if (I.opcode() == Opcode::Load && Reads[I.def()] == 0)
          Dead = true;
        if (Dead) {
          ++Deleted;
          Changed = true;
          continue;
        }
        Kept.push_back(std::move(I));
      }
      BB.instructions() = std::move(Kept);
    }
  }
  return Deleted;
}

unsigned pira::propagateCopies(Function &F) {
  assert(!F.isAllocated() && "cleanups run on symbolic code");
  unsigned Rewritten = 0;
  for (BasicBlock &BB : F.blocks()) {
    // Active forwardings: copy destination -> source.
    std::map<Reg, Reg> Forward;
    for (Instruction &I : BB.instructions()) {
      for (unsigned Op = 0, OE = static_cast<unsigned>(I.uses().size());
           Op != OE; ++Op) {
        auto It = Forward.find(I.uses()[Op]);
        if (It != Forward.end()) {
          I.setUse(Op, It->second);
          ++Rewritten;
        }
      }
      if (!I.hasDef())
        continue;
      Reg D = I.def();
      // Any redefinition invalidates forwardings through that register.
      Forward.erase(D);
      for (auto It = Forward.begin(); It != Forward.end();) {
        if (It->second == D)
          It = Forward.erase(It);
        else
          ++It;
      }
      if (I.opcode() == Opcode::Copy && I.uses()[0] != D)
        Forward[D] = I.uses()[0];
    }
  }
  return Rewritten;
}
