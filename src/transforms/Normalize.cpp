//===- transforms/Normalize.cpp - One register per value ------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "transforms/Normalize.h"

#include "analysis/Webs.h"
#include "ir/Function.h"

#include <cassert>

using namespace pira;

unsigned pira::normalizeWebNames(Function &F) {
  assert(!F.isAllocated() && "normalization runs on symbolic code");
  Webs W(F);
  unsigned Changed = 0;
  for (unsigned B = 0, NB = F.numBlocks(); B != NB; ++B) {
    BasicBlock &BB = F.block(B);
    for (unsigned I = 0, E = BB.size(); I != E; ++I) {
      Instruction &Inst = BB.inst(I);
      for (unsigned Op = 0, OE = static_cast<unsigned>(Inst.uses().size());
           Op != OE; ++Op) {
        Reg NewReg = static_cast<Reg>(W.webOfUse(B, I, Op));
        if (Inst.uses()[Op] != NewReg) {
          Inst.setUse(Op, NewReg);
          ++Changed;
        }
      }
      if (Inst.hasDef()) {
        Reg NewReg = static_cast<Reg>(W.webOfDef(B, I));
        if (Inst.def() != NewReg) {
          Inst.setDef(NewReg);
          ++Changed;
        }
      }
    }
  }
  F.setNumRegs(W.numWebs());
  return Changed;
}
