//===- transforms/LoopUnroller.h - Counted-loop unrolling -------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unrolls single-block counted loops in the canonical tail form the
/// IRBuilder emits:
///
/// \code
///   loop:
///     <body>
///     i = add i, step        # induction update
///     c = cmplt i, n         # guard
///     cbr c, loop, exit
/// \endcode
///
/// Unrolling by U replicates `<body>; i += step` U times before a single
/// guard. The transformation is exact only when the trip count is a
/// multiple of U; the recognizer therefore requires constant step and
/// bound with `(bound - start) % (step * U) == 0` when the start is also
/// a visible constant, and refuses otherwise. This is the substrate's
/// ILP lever: unrolling widens the scheduling window and raises register
/// pressure, exactly the tension the paper's framework manages.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_TRANSFORMS_LOOPUNROLLER_H
#define PIRA_TRANSFORMS_LOOPUNROLLER_H

namespace pira {

class Function;

/// Attempts to unroll the counted loop in block \p BlockIdx of \p F by
/// \p Factor. \returns true on success; on failure \p F is unchanged.
bool unrollCountedLoop(Function &F, unsigned BlockIdx, unsigned Factor);

/// Unrolls every recognizable counted loop of \p F by \p Factor;
/// returns the number of loops transformed.
unsigned unrollAllLoops(Function &F, unsigned Factor);

} // namespace pira

#endif // PIRA_TRANSFORMS_LOOPUNROLLER_H
