//===- core/PinterAllocator.h - Section 4 combined allocator ----*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's "registers allocation Algorithm" (Section 4), embedding
/// scheduling and allocation heuristics in one Chaitin-based coloring of
/// the parallelizable interference graph:
///
///   1. EP-driven preliminary reordering of each block (PreScheduler).
///   2. Simplify vertices of degree < r on the combined graph.
///   3. When stuck, if some vertex has degree < r counting only
///      interference edges, give away the least valuable parallelism:
///      remove the incident parallel-only (Ef \ Er) edge with the
///      smallest scheduling benefit — never an Ef ∩ Er edge (Lemma 3) —
///      and resume simplification.
///   4. Otherwise spill the vertex minimizing the generalized metric
///      h*(v) = cost(v) / Σ_{u ∈ in(v)} w({u, v}), where pure
///      interference edges weigh InterferenceWeight, pure parallel edges
///      ParallelWeight, and edges in both families the sum (Lemmas 2/3).
///      With ParallelWeight = 0 and no parallel edges this degenerates to
///      the traditional h = cost/degree.
///   5. Color in reverse removal order; on spills, insert spill code and
///      repeat the whole procedure.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_CORE_PINTERALLOCATOR_H
#define PIRA_CORE_PINTERALLOCATOR_H

#include "regalloc/Allocation.h"

#include <vector>

namespace pira {

class Function;
class MachineModel;
class ParallelInterferenceGraph;
class ThreadPool;

/// Tuning knobs for the Section 4 procedure.
struct PinterOptions {
  /// Weight of pure interference edges in h* (spill avoidance).
  double InterferenceWeight = 1.0;
  /// Weight of pure parallel edges in h* (parallelism preservation).
  /// The paper argues materialized parallelism usually outweighs a spill.
  double ParallelWeight = 1.0;
  /// Run the EP-driven input reordering before building the graphs.
  bool PreSchedule = true;
  /// Collect parallel edges across plausible block pairs AND hoist
  /// instructions within acyclic control-equivalent chains so the
  /// block scheduler can exploit them (the global / region extension).
  bool UseRegions = false;
  /// Cap on color/spill/repeat rounds.
  unsigned MaxRounds = 32;
  /// When non-null, independent components of each block's schedule
  /// graph close in parallel on this pool during PIG construction.
  /// Results are byte-identical either way (components write disjoint
  /// closure rows); the batch driver attaches a pool for single-function
  /// batches that would otherwise leave its workers idle. Non-owning.
  ThreadPool *ClosurePool = nullptr;
};

/// Statistics of a combined allocation run.
struct PinterStats {
  bool Success = false;
  unsigned Rounds = 0;
  unsigned ColorsUsed = 0;
  unsigned SpilledWebs = 0;
  unsigned SpillStores = 0;
  unsigned SpillLoads = 0;
  /// Parallel-only edges sacrificed under register pressure (step 3).
  unsigned ParallelEdgesDropped = 0;
  /// Instructions repositioned by the preliminary scheduling stage.
  unsigned PreScheduleMoves = 0;
  /// Instructions hoisted across blocks by the region extension.
  unsigned HoistedInstructions = 0;
};

/// One round of the Section 4 coloring procedure on a PIG. Infinite-cost
/// vertices are never spilled. Dropped-edge count is reported in the
/// returned Allocation::ParallelEdgesDropped.
Allocation pinterColor(const ParallelInterferenceGraph &PIG,
                       const std::vector<double> &Costs, unsigned NumRegs,
                       const PinterOptions &Opts = {});

/// Full combined allocation of \p F onto \p NumRegs registers for
/// \p Machine; mutates \p F (reordering, spill code, physical renaming).
/// \p SymbolicSnapshot, when non-null, receives the final symbolic-form
/// twin for false-dependence checking.
PinterStats pinterAllocate(Function &F, unsigned NumRegs,
                           const MachineModel &Machine,
                           const PinterOptions &Opts = {},
                           Function *SymbolicSnapshot = nullptr);

} // namespace pira

#endif // PIRA_CORE_PINTERALLOCATOR_H
