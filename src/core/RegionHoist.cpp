//===- core/RegionHoist.cpp - Joint scheduling of plausible blocks --------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "core/RegionHoist.h"

#include "analysis/Regions.h"
#include "analysis/Webs.h"
#include "ir/Function.h"
#include "support/BitMatrix.h"

#include <cassert>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace pira;

namespace {

/// Hoisting context for one acyclic control-equivalent chain.
class ChainHoister {
public:
  ChainHoister(Function &F, const Webs &W,
               const std::vector<unsigned> &Chain, const BitMatrix &Reach,
               const std::map<Reg, unsigned> &WebsPerReg)
      : F(F), W(W), Chain(Chain), Reach(Reach), WebsPerReg(WebsPerReg) {}

  unsigned run() {
    unsigned Head = Chain[0];
    collectInterveningStores();

    // Def sites already "at the head": everything originally in it.
    for (unsigned I = 0, E = F.block(Head).size(); I != E; ++I)
      AtHead.insert({Head, I});

    // Arrays stored by instructions that stay behind, in region order.
    // Walk the chain in order; an instruction can only hoist above
    // non-hoisted code that precedes it, so we track stores that commit
    // to staying (processed and not hoisted).
    std::vector<std::pair<unsigned, unsigned>> ToHoist;
    std::set<std::string> StoresStaying;
    for (const Instruction &I : F.block(Head).instructions())
      if (I.opcode() == Opcode::Store)
        StoresStaying.insert(I.arraySymbol());

    for (size_t Pos = 1; Pos != Chain.size(); ++Pos) {
      unsigned B = Chain[Pos];
      for (unsigned I = 0, E = F.block(B).size(); I != E; ++I) {
        const Instruction &Inst = F.block(B).inst(I);
        if (canHoist(B, I, Inst, StoresStaying)) {
          ToHoist.emplace_back(B, I);
          AtHead.insert({B, I});
        } else if (Inst.opcode() == Opcode::Store) {
          StoresStaying.insert(Inst.arraySymbol());
        }
      }
    }
    if (ToHoist.empty())
      return 0;
    materialize(Head, ToHoist);
    return static_cast<unsigned>(ToHoist.size());
  }

private:
  /// Stores in blocks lying on a path from the head to any chain member,
  /// excluding the chain itself (diamond arms and the like).
  void collectInterveningStores() {
    std::set<unsigned> InChain(Chain.begin(), Chain.end());
    unsigned Head = Chain[0];
    for (unsigned P = 0, E = F.numBlocks(); P != E; ++P) {
      if (InChain.count(P) || !Reach.test(Head, P))
        continue;
      bool ReachesChain = false;
      for (unsigned B : Chain)
        ReachesChain |= Reach.test(P, B);
      if (!ReachesChain)
        continue;
      for (const Instruction &I : F.block(P).instructions())
        if (I.opcode() == Opcode::Store)
          InterveningStores.insert(I.arraySymbol());
    }
  }

  bool canHoist(unsigned B, unsigned I, const Instruction &Inst,
                const std::set<std::string> &StoresStaying) const {
    if (Inst.isTerminator() || Inst.opcode() == Opcode::Store)
      return false;
    // Moving a definition earlier must not capture reads that belong to
    // a *different* value held in the same symbolic register (diamond
    // merges or the register's function-entry value). Airtight rule: the
    // defined register must carry exactly one web in the whole function,
    // single-def and without an entry definition.
    if (Inst.hasDef()) {
      unsigned DefWeb = W.webOfDef(B, I);
      auto It = WebsPerReg.find(Inst.def());
      if (It == WebsPerReg.end() || It->second != 1)
        return false;
      if (W.hasEntryDef(DefWeb) || W.defsOfWeb(DefWeb).size() != 1)
        return false;
    }
    if (Inst.opcode() == Opcode::Load) {
      const std::string &Array = Inst.arraySymbol();
      if (StoresStaying.count(Array) || InterveningStores.count(Array))
        return false;
    }
    // Every operand web fully available at the head.
    for (unsigned Op = 0, OE = static_cast<unsigned>(Inst.uses().size());
         Op != OE; ++Op) {
      unsigned Web = W.webOfUse(B, I, Op);
      for (const DefSite &D : W.defsOfWeb(Web))
        if (!AtHead.count(D))
          return false;
    }
    return true;
  }

  void materialize(unsigned Head,
                   const std::vector<std::pair<unsigned, unsigned>> &Moves) {
    // Group moved indices per source block for O(1) membership.
    std::map<unsigned, std::set<unsigned>> MovedFrom;
    for (const auto &[B, I] : Moves)
      MovedFrom[B].insert(I);

    // Collect the moved instructions in region order.
    std::vector<Instruction> Hoisted;
    for (size_t Pos = 1; Pos != Chain.size(); ++Pos) {
      unsigned B = Chain[Pos];
      auto It = MovedFrom.find(B);
      if (It == MovedFrom.end())
        continue;
      for (unsigned I : It->second)
        Hoisted.push_back(F.block(B).inst(I));
      // Rebuild the source block without them.
      std::vector<Instruction> Rest;
      for (unsigned I = 0, E = F.block(B).size(); I != E; ++I)
        if (!It->second.count(I))
          Rest.push_back(F.block(B).inst(I));
      F.block(B).instructions() = std::move(Rest);
    }

    // Insert before the head's terminator.
    BasicBlock &HeadBB = F.block(Head);
    assert(HeadBB.hasTerminator() && "chain head must end in a branch");
    std::vector<Instruction> NewInsts(HeadBB.instructions().begin(),
                                      HeadBB.instructions().end() - 1);
    for (Instruction &I : Hoisted)
      NewInsts.push_back(std::move(I));
    NewInsts.push_back(HeadBB.instructions().back());
    HeadBB.instructions() = std::move(NewInsts);
  }

  Function &F;
  const Webs &W;
  const std::vector<unsigned> &Chain;
  const BitMatrix &Reach;
  const std::map<Reg, unsigned> &WebsPerReg;
  std::set<DefSite> AtHead;
  std::set<std::string> InterveningStores;
};

} // namespace

unsigned pira::regionHoist(Function &F) {
  assert(!F.isAllocated() && "region hoisting runs on symbolic code");
  RegionAnalysis RA(F);
  Webs W(F);

  // Full (back-edge-inclusive) reachability for cycle detection and the
  // intervening-store barrier.
  BitMatrix Reach(F.numBlocks());
  for (unsigned B = 0, E = F.numBlocks(); B != E; ++B)
    for (unsigned S : F.block(B).successors())
      Reach.set(B, S);
  Reach.transitiveClosure();

  std::map<Reg, unsigned> WebsPerReg;
  for (unsigned Web = 0, E = W.numWebs(); Web != E; ++Web)
    ++WebsPerReg[W.webRegister(Web)];

  unsigned Moved = 0;
  for (const std::vector<unsigned> &Chain : RA.regions()) {
    if (Chain.size() < 2)
      continue;
    // Never cross a loop: every chain member must be off-cycle.
    bool Acyclic = true;
    for (unsigned B : Chain)
      Acyclic &= !Reach.test(B, B);
    if (!Acyclic)
      continue;
    Moved += ChainHoister(F, W, Chain, Reach, WebsPerReg).run();
  }
  return Moved;
}
