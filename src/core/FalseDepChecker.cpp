//===- core/FalseDepChecker.cpp - Post-allocation validation --------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "core/FalseDepChecker.h"

#include "core/FalseDependenceGraph.h"
#include "ir/Function.h"
#include "machine/MachineModel.h"

#include <cassert>

using namespace pira;

std::vector<FalseDep>
pira::findFalseDependences(const Function &Symbolic,
                           const Function &Allocated,
                           const MachineModel &Machine) {
  assert(!Symbolic.isAllocated() && Allocated.isAllocated() &&
         "arguments swapped");
  assert(Symbolic.numBlocks() == Allocated.numBlocks() &&
         "functions do not correspond");

  std::vector<FalseDep> Result;
  for (unsigned B = 0, NB = Symbolic.numBlocks(); B != NB; ++B) {
    assert(Symbolic.block(B).size() == Allocated.block(B).size() &&
           "allocation must preserve instruction positions");
    FalseDependenceGraph FDG(Symbolic, B, Machine);
    DependenceGraph After(Allocated, B, Machine);
    for (const DepEdge &E : After.edges()) {
      // Only register reuse creates new edges; flow/memory/control edges
      // exist identically in the symbolic graph. Anti edges never forbid
      // same-cycle issue (reads precede writes), so only output edges
      // can be false — see the header comment.
      if (E.Kind != DepKind::Output)
        continue;
      if (FDG.canIssueTogether(E.From, E.To))
        Result.push_back({B, E.From, E.To, E.Kind});
    }
  }
  return Result;
}

unsigned pira::countAntiOrderingLosses(const Function &Symbolic,
                                       const Function &Allocated,
                                       const MachineModel &Machine) {
  assert(Symbolic.numBlocks() == Allocated.numBlocks() &&
         "functions do not correspond");
  unsigned Count = 0;
  for (unsigned B = 0, NB = Symbolic.numBlocks(); B != NB; ++B) {
    FalseDependenceGraph FDG(Symbolic, B, Machine);
    DependenceGraph After(Allocated, B, Machine);
    for (const DepEdge &E : After.edges())
      if (E.Kind == DepKind::Anti && FDG.canIssueTogether(E.From, E.To))
        ++Count;
  }
  return Count;
}
