//===- core/PigScheduler.h - List scheduling off the augmented PIG -*- C++-*-=//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's stated use for the augmented parallelizable interference
/// graph: "at each node v the edges {v,u} ∈ Ej ∩ E provide the list of
/// available instructions (with v) as used in list scheduling
/// algorithms such as [Gibbons-Muchnick]". This scheduler fills each
/// cycle by first picking the most urgent ready instruction and then
/// admitting only candidates that are Ef-adjacent to *every* instruction
/// already placed in the cycle — the machine's co-issue relation read
/// straight off the graph instead of re-deriving unit conflicts. On top
/// of that filter the usual unit/width counters keep multi-unit classes
/// honest (paper footnote 3).
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_CORE_PIGSCHEDULER_H
#define PIRA_CORE_PIGSCHEDULER_H

#include "sched/Schedule.h"

namespace pira {

class AugmentedPig;
class DependenceGraph;
class Function;
class MachineModel;

/// Schedules block \p BlockIdx of symbolic-form \p F using \p APig's
/// co-issue lists, with \p G supplying the precedence edges.
BlockSchedule scheduleBlockWithPig(const Function &F, unsigned BlockIdx,
                                   const AugmentedPig &APig,
                                   const DependenceGraph &G,
                                   const MachineModel &Machine);

/// Convenience: schedules every block of \p F via the augmented PIG.
FunctionSchedule scheduleFunctionWithPig(const Function &F,
                                         const MachineModel &Machine);

} // namespace pira

#endif // PIRA_CORE_PIGSCHEDULER_H
