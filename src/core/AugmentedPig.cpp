//===- core/AugmentedPig.cpp - Scheduler-facing augmented PIG -------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "core/AugmentedPig.h"

#include "analysis/Webs.h"
#include "core/FalseDependenceGraph.h"
#include "ir/Function.h"
#include "regalloc/InterferenceGraph.h"

#include <cassert>

using namespace pira;

AugmentedPig::AugmentedPig(const Function &F, unsigned BlockIdx,
                           const Webs &W, const MachineModel &Machine) {
  assert(!F.isAllocated() && "the augmented PIG is built on symbolic code");
  const BasicBlock &BB = F.block(BlockIdx);
  unsigned N = BB.size();
  Ef = UndirectedGraph(N);
  Overlap = UndirectedGraph(N);
  Full = UndirectedGraph(N);

  FalseDependenceGraph FDG(F, BlockIdx, Machine);
  Ef.unionWith(FDG.parallelPairs());
  Full.unionWith(FDG.parallelPairs());

  // Live-range overlap edges between defining instructions: project the
  // web interference relation back onto this block's defs.
  InterferenceGraph IG(F, W);
  for (unsigned I = 0; I != N; ++I) {
    if (!BB.inst(I).hasDef())
      continue;
    unsigned WebI = W.webOfDef(BlockIdx, I);
    for (unsigned J = I + 1; J != N; ++J) {
      if (!BB.inst(J).hasDef())
        continue;
      unsigned WebJ = W.webOfDef(BlockIdx, J);
      if (WebI != WebJ && IG.interfere(WebI, WebJ)) {
        Overlap.addEdge(I, J);
        Full.addEdge(I, J);
      }
    }
  }
}
