//===- core/AugmentedPig.h - Scheduler-facing augmented PIG -----*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's *augmented* parallelizable interference graph (Section 3):
/// vertices are ALL instructions of a block — including stores and other
/// non-defining operations — and an edge means either "these two
/// operations may be scheduled in the same cycle" (an Ef edge) or "these
/// represent live ranges that are not disjoint" (an interference edge
/// mapped back to defining instructions). The augmented parts take no
/// part in coloring; their role is to hand the instruction scheduler its
/// candidate lists: "at each node v the edges {v,u} ∈ Ej ∩ E provide the
/// list of available instructions (with v) as used in list scheduling
/// algorithms such as [Gibbons-Muchnick]".
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_CORE_AUGMENTEDPIG_H
#define PIRA_CORE_AUGMENTEDPIG_H

#include "support/UndirectedGraph.h"

#include <vector>

namespace pira {

class Function;
class MachineModel;
class Webs;

/// The augmented PIG of one basic block.
class AugmentedPig {
public:
  /// Builds the graph for block \p BlockIdx of symbolic-form \p F.
  AugmentedPig(const Function &F, unsigned BlockIdx, const Webs &W,
               const MachineModel &Machine);

  /// Returns the number of vertices (== instructions in the block).
  unsigned size() const { return Ef.numVertices(); }

  /// Co-issue (Ef) edges over instruction indices.
  const UndirectedGraph &coIssuePairs() const { return Ef; }

  /// Live-range overlap edges mapped onto defining instructions.
  const UndirectedGraph &overlapPairs() const { return Overlap; }

  /// The full augmented edge set (union of the two families).
  const UndirectedGraph &graph() const { return Full; }

  /// The scheduler's candidate list at \p Inst: instructions that may
  /// share \p Inst's cycle, ascending.
  std::vector<unsigned> availableWith(unsigned Inst) const {
    return Ef.neighborList(Inst);
  }

private:
  UndirectedGraph Ef;
  UndirectedGraph Overlap;
  UndirectedGraph Full;
};

} // namespace pira

#endif // PIRA_CORE_AUGMENTEDPIG_H
