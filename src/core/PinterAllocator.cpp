//===- core/PinterAllocator.cpp - Section 4 combined allocator ------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "core/PinterAllocator.h"

#include "analysis/Webs.h"
#include "core/ParallelInterferenceGraph.h"
#include "core/RegionHoist.h"
#include "ir/Function.h"
#include "machine/MachineModel.h"
#include "regalloc/InterferenceGraph.h"
#include "regalloc/SpillCost.h"
#include "regalloc/SpillInserter.h"
#include "sched/PreScheduler.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "support/UndirectedGraph.h"

#include <cassert>
#include <limits>
#include <set>

using namespace pira;

PIRA_STAT(NumPinterRounds, "Combined-allocator color/spill/repeat rounds");
PIRA_STAT(NumPinterSpilledWebs, "Webs the combined allocator sent to memory");
PIRA_STAT(NumParallelEdgesSacrificed,
          "Parallel-only PIG edges dropped under register pressure");

namespace {

/// Mutable working state of one coloring round: the combined graph and
/// its two families, kept consistent under vertex and edge removal.
class WorkGraphs {
public:
  WorkGraphs(const ParallelInterferenceGraph &PIG)
      : Combined(PIG.combined()), Interf(PIG.interference()),
        Par(PIG.parallel()), Removed(PIG.numWebs(), false),
        Remaining(PIG.numWebs()) {}

  unsigned size() const { return Combined.numVertices(); }
  unsigned remaining() const { return Remaining; }
  bool isRemoved(unsigned V) const { return Removed[V]; }
  unsigned degree(unsigned V) const { return Combined.degree(V); }

  /// Degree counting only interference edges (the paper's "when only
  /// interference edges are considered").
  unsigned interfDegree(unsigned V) const { return Interf.degree(V); }

  void removeVertex(unsigned V) {
    assert(!Removed[V] && "vertex removed twice");
    for (unsigned N : Combined.neighborList(V))
      Combined.removeEdge(V, N);
    for (unsigned N : Interf.neighborList(V))
      Interf.removeEdge(V, N);
    for (unsigned N : Par.neighborList(V))
      Par.removeEdge(V, N);
    Removed[V] = true;
    --Remaining;
  }

  /// Parallel-only neighbors of \p V still present.
  std::vector<unsigned> parallelOnlyNeighbors(unsigned V) const {
    std::vector<unsigned> Result;
    for (unsigned N : Par.neighborList(V))
      if (!Interf.hasEdge(V, N))
        Result.push_back(N);
    return Result;
  }

  void removeParallelEdge(unsigned A, unsigned B) {
    assert(!Interf.hasEdge(A, B) && "never drop an Ef ∩ Er edge");
    Par.removeEdge(A, B);
    Combined.removeEdge(A, B);
  }

  /// h* edge weight of the still-present edge {\p V, \p N}.
  double weight(unsigned V, unsigned N, const PinterOptions &Opts) const {
    double W = 0.0;
    if (Interf.hasEdge(V, N))
      W += Opts.InterferenceWeight;
    if (Par.hasEdge(V, N))
      W += Opts.ParallelWeight;
    return W;
  }

  const UndirectedGraph &combined() const { return Combined; }

private:
  UndirectedGraph Combined;
  UndirectedGraph Interf;
  UndirectedGraph Par;
  std::vector<bool> Removed;
  unsigned Remaining;
};

} // namespace

Allocation pira::pinterColor(const ParallelInterferenceGraph &PIG,
                             const std::vector<double> &Costs,
                             unsigned NumRegs, const PinterOptions &Opts) {
  PIRA_TIME_SCOPE("pig/coloring");
  unsigned N = PIG.numWebs();
  assert(Costs.size() == N && "cost vector size mismatch");
  Allocation Out;
  Out.ColorOfWeb.assign(N, -1);

  WorkGraphs Work(PIG);
  std::vector<unsigned> Stack;
  // Select must color against the graph with dropped edges gone but
  // removed vertices' edges intact: maintain it separately.
  UndirectedGraph SelectGraph = PIG.combined();

  auto Simplify = [&] {
    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (unsigned V = 0; V != N; ++V) {
        if (Work.isRemoved(V) || Work.degree(V) >= NumRegs)
          continue;
        Stack.push_back(V);
        Work.removeVertex(V);
        Progress = true;
      }
    }
  };

  while (Work.remaining() != 0) {
    Simplify();
    if (Work.remaining() == 0)
      break;

    // Step 3: some vertex colorable if we give up parallelism? Take the
    // vertex needing the fewest removals (smallest combined degree among
    // those with interference degree < r), and drop its least beneficial
    // parallel-only edge.
    unsigned Victim = ~0u;
    for (unsigned V = 0; V != N; ++V) {
      if (Work.isRemoved(V) || Work.interfDegree(V) >= NumRegs)
        continue;
      if (Victim == ~0u || Work.degree(V) < Work.degree(Victim))
        Victim = V;
    }
    if (Victim != ~0u) {
      std::vector<unsigned> Candidates = Work.parallelOnlyNeighbors(Victim);
      assert(!Candidates.empty() &&
             "interference degree < combined degree implies a parallel-only "
             "edge");
      unsigned Best = Candidates.front();
      for (unsigned C : Candidates)
        if (PIG.parallelBenefit(Victim, C) < PIG.parallelBenefit(Victim, Best))
          Best = C;
      Work.removeParallelEdge(Victim, Best);
      SelectGraph.removeEdge(Victim, Best);
      ++Out.ParallelEdgesDropped;
      ++NumParallelEdgesSacrificed;
      continue;
    }

    // Step 4: spill by the generalized metric h*.
    unsigned Spill = ~0u;
    double BestH = std::numeric_limits<double>::infinity();
    for (unsigned V = 0; V != N; ++V) {
      if (Work.isRemoved(V))
        continue;
      double WeightSum = 0.0;
      for (unsigned U : Work.combined().neighborList(V))
        WeightSum += Work.weight(V, U, Opts);
      // All surviving vertices have degree >= r >= 1, but guard against a
      // zero weight sum from degenerate option settings.
      double H = WeightSum > 0.0
                     ? Costs[V] / WeightSum
                     : Costs[V];
      // The first survivor seeds the choice so a round of all-infinite
      // costs still makes progress.
      if (Spill == ~0u || H < BestH) {
        BestH = H;
        Spill = V;
      }
    }
    assert(Spill != ~0u && "no spill candidate among survivors");
    Out.SpilledWebs.push_back(Spill);
    Work.removeVertex(Spill);
  }

  if (Out.SpilledWebs.empty())
    assignColorsGreedy(SelectGraph, Stack, Out);
  return Out;
}

PinterStats pira::pinterAllocate(Function &F, unsigned NumRegs,
                                 const MachineModel &Machine,
                                 const PinterOptions &Opts,
                                 Function *SymbolicSnapshot) {
  PIRA_TIME_SCOPE("alloc/pinter");
  PinterStats Stats;
  std::set<Reg> NoSpillRegs;
  constexpr double Infinite = std::numeric_limits<double>::infinity();

  for (unsigned Round = 0; Round != Opts.MaxRounds; ++Round) {
    // Cooperative watchdog: a stalled color/spill/repeat loop unwinds
    // here instead of holding its worker hostage.
    deadline::checkpoint();
    ++Stats.Rounds;
    ++NumPinterRounds;
    // Preliminary EP reordering improves the *input* order once. It must
    // not run again after spill rounds: it would hoist the fresh reload
    // loads (which have no predecessors) away from their uses, stretching
    // their live ranges and recreating the pressure the spill relieved.
    if (Round == 0) {
      if (Opts.UseRegions)
        Stats.HoistedInstructions = regionHoist(F);
      if (Opts.PreSchedule)
        Stats.PreScheduleMoves += preScheduleFunction(F, Machine);
    }

    PIRA_TIME_SCOPE("alloc/round");
    Webs W(F);
    InterferenceGraph IG(F, W);
    ParallelInterferenceGraph PIG(F, W, IG, Machine, Opts.UseRegions,
                                  Opts.ClosurePool);
    std::vector<double> Costs = computeSpillCosts(F, W);
    for (unsigned Web = 0, E = W.numWebs(); Web != E; ++Web)
      if (NoSpillRegs.count(W.webRegister(Web)))
        Costs[Web] = Infinite;

    Allocation A = pinterColor(PIG, Costs, NumRegs, Opts);
    Stats.ParallelEdgesDropped += A.ParallelEdgesDropped;
    if (A.fullyColored()) {
      if (SymbolicSnapshot != nullptr)
        *SymbolicSnapshot = F;
      applyAllocation(F, W, A);
      Stats.Success = true;
      Stats.ColorsUsed = A.NumColorsUsed;
      return Stats;
    }
    Stats.SpilledWebs += static_cast<unsigned>(A.SpilledWebs.size());
    NumPinterSpilledWebs += A.SpilledWebs.size();
    SpillCode Code = insertSpillCode(F, W, A.SpilledWebs, NoSpillRegs);
    Stats.SpillStores += Code.Stores;
    Stats.SpillLoads += Code.Loads;
  }
  return Stats;
}
