//===- core/PigScheduler.cpp - List scheduling off the augmented PIG ------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "core/PigScheduler.h"

#include "analysis/DependenceGraph.h"
#include "analysis/Webs.h"
#include "core/AugmentedPig.h"
#include "ir/Function.h"
#include "machine/MachineModel.h"
#include "sched/EPTimes.h"

#include <array>
#include <cassert>

using namespace pira;

BlockSchedule pira::scheduleBlockWithPig(const Function &F,
                                         unsigned BlockIdx,
                                         const AugmentedPig &APig,
                                         const DependenceGraph &G,
                                         const MachineModel &Machine) {
  const BasicBlock &BB = F.block(BlockIdx);
  unsigned N = G.size();
  assert(APig.size() == N && "augmented PIG does not match block");

  BlockSchedule Out;
  Out.CycleOf.assign(N, 0);
  if (N == 0)
    return Out;

  std::vector<unsigned> Height = computeHeights(G);
  std::vector<unsigned> PredsLeft(N, 0);
  for (unsigned V = 0; V != N; ++V)
    PredsLeft[V] = static_cast<unsigned>(G.predEdges(V).size());
  std::vector<unsigned> ReadyAt(N, 0);
  std::vector<bool> Issued(N, false);
  unsigned Remaining = N;
  unsigned Cycle = 0;

  while (Remaining != 0) {
    unsigned SlotsLeft = Machine.issueWidth();
    std::array<unsigned, NumUnitKinds> UnitsLeft{};
    for (unsigned K = 0; K != NumUnitKinds; ++K)
      UnitsLeft[K] = Machine.units(static_cast<UnitKind>(K));
    std::vector<unsigned> InCycle;

    bool IssuedAny = true;
    while (IssuedAny && SlotsLeft != 0) {
      IssuedAny = false;
      unsigned Best = ~0u;
      for (unsigned V = 0; V != N; ++V) {
        if (Issued[V] || PredsLeft[V] != 0 || ReadyAt[V] > Cycle)
          continue;
        if (UnitsLeft[static_cast<unsigned>(BB.inst(V).unit())] == 0)
          continue;
        // The graph's candidate rule: V must be co-issuable (Ef
        // adjacent) with everything already in the cycle.
        bool Compatible = true;
        for (unsigned Placed : InCycle)
          Compatible &= APig.coIssuePairs().hasEdge(V, Placed);
        if (!Compatible)
          continue;
        if (Best == ~0u || Height[V] > Height[Best])
          Best = V;
      }
      if (Best == ~0u)
        break;

      Issued[Best] = true;
      Out.CycleOf[Best] = Cycle;
      InCycle.push_back(Best);
      --Remaining;
      --SlotsLeft;
      --UnitsLeft[static_cast<unsigned>(BB.inst(Best).unit())];
      IssuedAny = true;
      for (unsigned EI : G.succEdges(Best)) {
        const DepEdge &E = G.edges()[EI];
        ReadyAt[E.To] = std::max(ReadyAt[E.To], Cycle + E.Latency);
        --PredsLeft[E.To];
      }
    }
    ++Cycle;
  }
  Out.Makespan = Cycle;
  return Out;
}

FunctionSchedule pira::scheduleFunctionWithPig(const Function &F,
                                               const MachineModel &Machine) {
  assert(!F.isAllocated() && "the augmented PIG covers symbolic code");
  Webs W(F);
  FunctionSchedule Out;
  Out.Blocks.reserve(F.numBlocks());
  for (unsigned B = 0, E = F.numBlocks(); B != E; ++B) {
    DependenceGraph G(F, B, Machine);
    AugmentedPig APig(F, B, W, Machine);
    Out.Blocks.push_back(scheduleBlockWithPig(F, B, APig, G, Machine));
  }
  return Out;
}
