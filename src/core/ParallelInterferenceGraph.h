//===- core/ParallelInterferenceGraph.h - The paper's PIG -------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallelizable interference graph G = (V, E) — the paper's central
/// construction. V is the set of live-range vertices (webs); E is the
/// union of the interference edges Er and, for every false-dependence
/// pair {ui, vj} in some block's Ef whose instructions both define a
/// value, an edge between the defs' webs. Theorem 1: any coloring of G
/// spills no live value and introduces no false dependence; Theorem 2: no
/// proper subgraph has that property.
///
/// With UseRegions enabled, Ef pairs are also collected across the blocks
/// of each acyclic control-equivalent region (the paper's global
/// extension over "plausible" block pairs), with conservative cross-block
/// memory and flow constraints.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_CORE_PARALLELINTERFERENCEGRAPH_H
#define PIRA_CORE_PARALLELINTERFERENCEGRAPH_H

#include "support/UndirectedGraph.h"

#include <map>
#include <utility>

namespace pira {

class Function;
class InterferenceGraph;
class MachineModel;
class ThreadPool;
class Webs;

/// The PIG over webs, keeping the two edge families separate so the
/// Section-4 heuristics can weigh them differently (Lemmas 2 and 3).
class ParallelInterferenceGraph {
public:
  /// Builds the PIG of \p F. \p IG must be the interference graph of the
  /// same function/web partition. When \p UseRegions is true, parallel
  /// edges are additionally collected across plausible block pairs.
  /// \p ClosurePool, when non-null, parallelizes the per-block closure;
  /// the graph is byte-identical either way.
  ParallelInterferenceGraph(const Function &F, const Webs &W,
                            const InterferenceGraph &IG,
                            const MachineModel &Machine,
                            bool UseRegions = false,
                            ThreadPool *ClosurePool = nullptr);

  /// Returns the number of vertices (webs).
  unsigned numWebs() const { return Interference.numVertices(); }

  /// The interference family Er.
  const UndirectedGraph &interference() const { return Interference; }

  /// The parallel family: web pairs whose defining instructions may issue
  /// in the same cycle somewhere. May overlap Er (Lemma 3 edges).
  const UndirectedGraph &parallel() const { return Parallel; }

  /// The full edge set E = Er ∪ parallel, as one graph.
  const UndirectedGraph &combined() const { return Combined; }

  /// Scheduling benefit of parallel edge {\p A, \p B}: the largest summed
  /// critical-path height over the instruction pairs that induced it.
  /// Edges with small benefit are the cheapest parallelism to give away
  /// under register pressure. Zero for non-parallel edges.
  double parallelBenefit(unsigned A, unsigned B) const;

  /// Number of parallel edges that are not interference edges.
  unsigned numParallelOnlyEdges() const;

private:
  void addParallelEdge(unsigned WebA, unsigned WebB, double Benefit);

  UndirectedGraph Interference;
  UndirectedGraph Parallel;
  UndirectedGraph Combined;
  std::map<std::pair<unsigned, unsigned>, double> Benefit;
};

} // namespace pira

#endif // PIRA_CORE_PARALLELINTERFERENCEGRAPH_H
