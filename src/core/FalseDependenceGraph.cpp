//===- core/FalseDependenceGraph.cpp - The paper's Gf ---------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "core/FalseDependenceGraph.h"

#include "analysis/DependenceGraph.h"
#include "ir/Function.h"
#include "machine/MachineModel.h"
#include "support/Telemetry.h"

using namespace pira;

PIRA_STAT(NumFdgParallelPairs,
          "Instruction pairs found co-issuable (Ef edges)");
PIRA_STAT(NumFdgMachineConstraintPairs,
          "Instruction pairs serialized by unit/width contention alone");

FalseDependenceGraph::FalseDependenceGraph(const Function &F,
                                           unsigned BlockIdx,
                                           const MachineModel &Machine) {
  DependenceGraph Gs(F, BlockIdx, Machine);
  build(F, BlockIdx, Gs, Machine);
}

FalseDependenceGraph::FalseDependenceGraph(const Function &F,
                                           unsigned BlockIdx,
                                           const DependenceGraph &Gs,
                                           const MachineModel &Machine) {
  build(F, BlockIdx, Gs, Machine);
}

void FalseDependenceGraph::build(const Function &F, unsigned BlockIdx,
                                 const DependenceGraph &Gs,
                                 const MachineModel &Machine) {
  PIRA_TIME_SCOPE("pig/fdg");
  const BasicBlock &BB = F.block(BlockIdx);
  unsigned N = Gs.size();
  Constraints = UndirectedGraph(N);
  MachinePairs = UndirectedGraph(N);
  ParallelPairs = UndirectedGraph(N);

  // Et part 1: the transitive closure of Gs, directions removed.
  {
    PIRA_TIME_SCOPE("pig/closure");
    BitMatrix Reach = Gs.reachability();
    for (unsigned U = 0; U != N; ++U)
      for (int V = Reach.row(U).findFirst(); V != -1;
           V = Reach.row(U).findNext(static_cast<unsigned>(V)))
        if (static_cast<unsigned>(V) != U)
          Constraints.addEdge(U, static_cast<unsigned>(V));
  }

  // Et part 2: non-precedence machine constraints — pairs contending for
  // a unit class with a single unit (the paper's explicit rule; multiple
  // units of one class are left to the scheduler per footnote 3). A
  // single-issue machine serializes every pair.
  for (unsigned U = 0; U != N; ++U)
    for (unsigned V = U + 1; V != N; ++V) {
      bool Conflict = Machine.issueWidth() == 1;
      if (!Conflict) {
        UnitKind KU = BB.inst(U).unit();
        Conflict = KU == BB.inst(V).unit() && Machine.isSingleUnit(KU);
      }
      if (Conflict) {
        Constraints.addEdge(U, V);
        MachinePairs.addEdge(U, V);
      }
    }

  // Ef: the complement of Et — exactly the pairs that may share a cycle.
  for (unsigned U = 0; U != N; ++U)
    for (unsigned V = U + 1; V != N; ++V)
      if (!Constraints.hasEdge(U, V))
        ParallelPairs.addEdge(U, V);

  NumFdgParallelPairs += ParallelPairs.numEdges();
  NumFdgMachineConstraintPairs += MachinePairs.numEdges();
}
