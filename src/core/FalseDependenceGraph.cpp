//===- core/FalseDependenceGraph.cpp - The paper's Gf ---------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "core/FalseDependenceGraph.h"

#include "analysis/DependenceGraph.h"
#include "ir/Function.h"
#include "machine/MachineModel.h"
#include "support/Telemetry.h"

#include <array>

using namespace pira;

PIRA_STAT(NumFdgParallelPairs,
          "Instruction pairs found co-issuable (Ef edges)");
PIRA_STAT(NumFdgMachineConstraintPairs,
          "Instruction pairs serialized by unit/width contention alone");

FalseDependenceGraph::FalseDependenceGraph(const Function &F,
                                           unsigned BlockIdx,
                                           const MachineModel &Machine,
                                           ThreadPool *ClosurePool) {
  DependenceGraph Gs(F, BlockIdx, Machine);
  build(F, BlockIdx, Gs, Machine, ClosurePool);
}

FalseDependenceGraph::FalseDependenceGraph(const Function &F,
                                           unsigned BlockIdx,
                                           const DependenceGraph &Gs,
                                           const MachineModel &Machine,
                                           ThreadPool *ClosurePool) {
  build(F, BlockIdx, Gs, Machine, ClosurePool);
}

void FalseDependenceGraph::build(const Function &F, unsigned BlockIdx,
                                 const DependenceGraph &Gs,
                                 const MachineModel &Machine,
                                 ThreadPool *ClosurePool) {
  PIRA_TIME_SCOPE("pig/fdg");
  const BasicBlock &BB = F.block(BlockIdx);
  unsigned N = Gs.size();

  // All three edge families are assembled as packed bit matrices and
  // adopted wholesale (UndirectedGraph::fromSymmetric); every step below
  // is a word-parallel row operation, never a per-pair insertion. This is
  // the serial bottleneck each batch worker runs, so it stays O(N^2/64)
  // per step.

  // Et part 1: the transitive closure of Gs, directions removed. The
  // closure runs through the pre-closure DAG reduction; independent
  // components close in parallel when a pool is attached.
  BitMatrix Et;
  {
    PIRA_TIME_SCOPE("pig/closure");
    Et = Gs.reachability(ClosurePool);
    Et.symmetrize();
  }

  // Et part 2: non-precedence machine constraints — pairs contending for
  // a unit class with a single unit (the paper's explicit rule; multiple
  // units of one class are left to the scheduler per footnote 3). A
  // single-issue machine serializes every pair. Row form: every member of
  // a contended class absorbs the class's member set.
  BitMatrix MachineM(N);
  if (Machine.issueWidth() == 1) {
    for (unsigned U = 0; U != N; ++U) {
      MachineM.row(U).setAll();
      MachineM.reset(U, U);
    }
  } else {
    std::array<BitVector, NumUnitKinds> Members;
    Members.fill(BitVector(N));
    for (unsigned U = 0; U != N; ++U)
      Members[static_cast<unsigned>(BB.inst(U).unit())].set(U);
    for (unsigned U = 0; U != N; ++U) {
      UnitKind KU = BB.inst(U).unit();
      if (Machine.isSingleUnit(KU)) {
        MachineM.row(U).unionWith(Members[static_cast<unsigned>(KU)]);
        MachineM.reset(U, U);
      }
    }
  }
  for (unsigned U = 0; U != N; ++U)
    Et.row(U).unionWith(MachineM.row(U));

  // Ef: the complement of Et — exactly the pairs that may share a cycle.
  BitMatrix Ef = Et;
  Ef.complementOffDiagonal();

  Constraints = UndirectedGraph::fromSymmetric(std::move(Et));
  MachinePairs = UndirectedGraph::fromSymmetric(std::move(MachineM));
  ParallelPairs = UndirectedGraph::fromSymmetric(std::move(Ef));

  NumFdgParallelPairs += ParallelPairs.numEdges();
  NumFdgMachineConstraintPairs += MachinePairs.numEdges();
}
