//===- core/ParallelInterferenceGraph.cpp - The paper's PIG ---------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "core/ParallelInterferenceGraph.h"

#include "analysis/DependenceGraph.h"
#include "analysis/Regions.h"
#include "analysis/Webs.h"
#include "core/FalseDependenceGraph.h"
#include "ir/Function.h"
#include "machine/MachineModel.h"
#include "regalloc/InterferenceGraph.h"
#include "sched/EPTimes.h"
#include "support/BitMatrix.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <string>

using namespace pira;

PIRA_STAT(NumPigParallelEdges, "Parallel (Ep) edges added to PIGs");
PIRA_STAT(NumPigRegionPairs,
          "Cross-block parallel pairs found by the region extension");

void ParallelInterferenceGraph::addParallelEdge(unsigned WebA, unsigned WebB,
                                                double BenefitValue) {
  if (WebA == WebB)
    return;
  ++NumPigParallelEdges;
  Parallel.addEdge(WebA, WebB);
  Combined.addEdge(WebA, WebB);
  auto Key = std::minmax(WebA, WebB);
  double &Slot = Benefit[{Key.first, Key.second}];
  Slot = std::max(Slot, BenefitValue);
}

double ParallelInterferenceGraph::parallelBenefit(unsigned A,
                                                  unsigned B) const {
  auto Key = std::minmax(A, B);
  auto It = Benefit.find({Key.first, Key.second});
  return It == Benefit.end() ? 0.0 : It->second;
}

unsigned ParallelInterferenceGraph::numParallelOnlyEdges() const {
  unsigned Count = 0;
  for (const auto &[A, B] : Parallel.edgeList())
    if (!Interference.hasEdge(A, B))
      ++Count;
  return Count;
}

namespace {

/// Cross-block false-dependence discovery for one acyclic
/// control-equivalent region: a conservative combined schedule graph over
/// the region's instructions, closed and complemented like the
/// single-block construction.
class RegionFalseDeps {
public:
  RegionFalseDeps(const Function &F, const Webs &W,
                  const std::vector<unsigned> &Blocks)
      : F(F) {
    for (unsigned B : Blocks)
      for (unsigned I = 0, E = F.block(B).size(); I != E; ++I)
        Nodes.emplace_back(B, I);
    unsigned N = static_cast<unsigned>(Nodes.size());
    Deps = BitMatrix(N);

    // Which arrays each intervening block may write (for the cross-block
    // memory barrier rule).
    BitMatrix BlockReach(F.numBlocks());
    for (unsigned B = 0, E = F.numBlocks(); B != E; ++B)
      for (unsigned S : F.block(B).successors())
        BlockReach.set(B, S);
    BlockReach.transitiveClosure();

    std::set<unsigned> InRegion(Blocks.begin(), Blocks.end());
    auto InterveningStoreTo = [&](unsigned From, unsigned To,
                                  const std::string &Array) {
      for (unsigned P = 0, E = F.numBlocks(); P != E; ++P) {
        if (InRegion.count(P) || !BlockReach.test(From, P) ||
            !BlockReach.test(P, To))
          continue;
        for (const Instruction &I : F.block(P).instructions())
          if (I.opcode() == Opcode::Store && I.arraySymbol() == Array)
            return true;
      }
      return false;
    };

    for (unsigned A = 0; A != N; ++A) {
      const Instruction &IA = instAt(A);
      for (unsigned B = A + 1; B != N; ++B) {
        const Instruction &IB = instAt(B);
        bool SameBlock = Nodes[A].first == Nodes[B].first;
        if (orders(W, A, IA, B, IB, SameBlock, InterveningStoreTo))
          Deps.set(A, B);
      }
    }
    Deps.transitiveClosure();
  }

  /// Returns true when nodes \p A and \p B (region indices) may issue in
  /// the same cycle under \p Machine.
  bool canIssueTogether(unsigned A, unsigned B,
                        const MachineModel &Machine) const {
    if (Deps.test(A, B) || Deps.test(B, A))
      return false;
    if (Machine.issueWidth() == 1)
      return false;
    UnitKind KA = instAt(A).unit();
    if (KA == instAt(B).unit() && Machine.isSingleUnit(KA))
      return false;
    return true;
  }

  const std::vector<std::pair<unsigned, unsigned>> &nodes() const {
    return Nodes;
  }

  const Instruction &instAt(unsigned Node) const {
    return F.block(Nodes[Node].first).inst(Nodes[Node].second);
  }

private:
  /// Decides whether region node A must precede region node B (A earlier
  /// in region order).
  template <typename BarrierFn>
  bool orders(const Webs &W, unsigned A, const Instruction &IA, unsigned B,
              const Instruction &IB, bool SameBlock,
              BarrierFn &&InterveningStoreTo) const {
    auto [BlockA, InstA] = Nodes[A];
    auto [BlockB, InstB] = Nodes[B];

    // Flow: A defines the web one of B's operands reads.
    if (IA.hasDef()) {
      unsigned DefWeb = W.webOfDef(BlockA, InstA);
      for (unsigned Op = 0, OE = static_cast<unsigned>(IB.uses().size());
           Op != OE; ++Op)
        if (W.webOfUse(BlockB, InstB, Op) == DefWeb)
          return true;
      // Output on a compound web (defs on both sides; Claim 2 territory).
      if (IB.hasDef() && W.webOfDef(BlockB, InstB) == DefWeb)
        return true;
    }
    // Anti: B redefines a web A reads (same compound web).
    if (IB.hasDef()) {
      unsigned DefWeb = W.webOfDef(BlockB, InstB);
      for (unsigned Op = 0, OE = static_cast<unsigned>(IA.uses().size());
           Op != OE; ++Op)
        if (W.webOfUse(BlockA, InstA, Op) == DefWeb)
          return true;
    }

    // Memory ordering (loads commute; everything else is conservative,
    // plus a barrier when a block between the two writes the array).
    if (IA.isMemory() && IB.isMemory() &&
        !(IA.opcode() == Opcode::Load && IB.opcode() == Opcode::Load)) {
      if (!memoryDisjoint(IA, IB))
        return true;
      if (!SameBlock && InterveningStoreTo(BlockA, BlockB, IA.arraySymbol()))
        return true;
    }
    // A store is also ordered against intervening writes of its array even
    // when region endpoints are provably disjoint loads/stores — handled
    // above; loads pairs need the barrier too when crossing blocks.
    if (IA.isMemory() && IB.isMemory() && !SameBlock &&
        IA.arraySymbol() == IB.arraySymbol() &&
        InterveningStoreTo(BlockA, BlockB, IA.arraySymbol()))
      return true;

    // Control: anything precedes its own block's terminator; terminators
    // keep their block order. Cross-block non-terminator pairs float (the
    // paper "logically ignores" control edges inside a region).
    if (SameBlock && IB.isTerminator())
      return true;
    if (!SameBlock && IA.isTerminator() && IB.isTerminator())
      return true;
    return false;
  }

  /// Same-location test mirroring the block-level rule.
  bool memoryDisjoint(const Instruction &A, const Instruction &B) const {
    if (A.arraySymbol() != B.arraySymbol())
      return true;
    unsigned Size = F.arraySize(A.arraySymbol());
    if (Size == 0)
      return false;
    auto IndexOf = [](const Instruction &I) -> Reg {
      if (I.opcode() == Opcode::Load)
        return I.uses().empty() ? NoReg : I.uses()[0];
      return I.uses().size() > 1 ? I.uses()[1] : NoReg;
    };
    if (IndexOf(A) != IndexOf(B))
      return false;
    bool InBounds = A.imm() >= 0 && B.imm() >= 0 &&
                    A.imm() < static_cast<int64_t>(Size) &&
                    B.imm() < static_cast<int64_t>(Size);
    return InBounds && A.imm() != B.imm();
  }

  const Function &F;
  std::vector<std::pair<unsigned, unsigned>> Nodes;
  BitMatrix Deps;
};

} // namespace

ParallelInterferenceGraph::ParallelInterferenceGraph(
    const Function &F, const Webs &W, const InterferenceGraph &IG,
    const MachineModel &Machine, bool UseRegions,
    ThreadPool *ClosurePool) {
  PIRA_TIME_SCOPE("pig/build");
  assert(!F.isAllocated() && "the PIG is built over symbolic code");
  unsigned NumWebs = W.numWebs();
  Interference = UndirectedGraph(NumWebs);
  Parallel = UndirectedGraph(NumWebs);
  Combined = UndirectedGraph(NumWebs);

  Interference.unionWith(IG.graph());
  Combined.unionWith(IG.graph());

  // Block-level Ef pairs between defining instructions, mapped to webs.
  for (unsigned B = 0, NB = F.numBlocks(); B != NB; ++B) {
    DependenceGraph Gs(F, B, Machine);
    FalseDependenceGraph FDG(F, B, Gs, Machine, ClosurePool);
    std::vector<unsigned> Height = computeHeights(Gs);
    const BasicBlock &BB = F.block(B);
    for (const auto &[U, V] : FDG.parallelPairs().edgeList()) {
      if (!BB.inst(U).hasDef() || !BB.inst(V).hasDef())
        continue;
      addParallelEdge(W.webOfDef(B, U), W.webOfDef(B, V),
                      static_cast<double>(Height[U] + Height[V]));
    }
  }

  if (!UseRegions)
    return;

  // Global extension: Ef pairs across the blocks of each region.
  PIRA_TIME_SCOPE("pig/regions");
  RegionAnalysis RA(F);
  for (const std::vector<unsigned> &Blocks : RA.regions()) {
    if (Blocks.size() < 2)
      continue;
    RegionFalseDeps RFD(F, W, Blocks);
    unsigned N = static_cast<unsigned>(RFD.nodes().size());
    for (unsigned A = 0; A != N; ++A) {
      const Instruction &IA = RFD.instAt(A);
      if (!IA.hasDef())
        continue;
      for (unsigned B2 = A + 1; B2 != N; ++B2) {
        const Instruction &IB = RFD.instAt(B2);
        if (!IB.hasDef())
          continue;
        if (RFD.nodes()[A].first == RFD.nodes()[B2].first)
          continue; // intra-block pairs were handled exactly above
        if (!RFD.canIssueTogether(A, B2, Machine))
          continue;
        auto [BlockA, InstA] = RFD.nodes()[A];
        auto [BlockB, InstB] = RFD.nodes()[B2];
        ++NumPigRegionPairs;
        addParallelEdge(W.webOfDef(BlockA, InstA),
                        W.webOfDef(BlockB, InstB), /*Benefit=*/1.0);
      }
    }
  }
}
