//===- core/RegionHoist.h - Joint scheduling of plausible blocks *- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The motion half of the paper's region story: blocks that are
/// "plausible for being scheduled together" (one dominates the other,
/// the other postdominates the first) are scheduled "by logically
/// ignoring the control dependence edges between [them]". This pass
/// makes that concrete with conservative cross-block code motion: within
/// each *acyclic* control-equivalent chain, instructions from dominated
/// blocks are hoisted into the chain head when every data and memory
/// constraint allows, handing the block-level list scheduler one larger
/// window. Loops are never crossed (that would change execution counts —
/// loop-invariant code motion is a different optimization).
///
/// Hoisting rules (all conservative):
///   * never terminators, never stores;
///   * every operand's web must have all of its definitions already in
///     the chain head (originally or via hoisting) or at function entry;
///   * a load is pinned by any store to the same array that stays
///     behind it in region order, or that lives on an intervening path
///     between the head and the load's home block.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_CORE_REGIONHOIST_H
#define PIRA_CORE_REGIONHOIST_H

namespace pira {

class Function;

/// Applies region hoisting to symbolic-form \p F.
/// \returns the number of instructions moved.
unsigned regionHoist(Function &F);

} // namespace pira

#endif // PIRA_CORE_REGIONHOIST_H
