//===- core/FalseDependenceGraph.h - The paper's Gf ------------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The false dependence graph Gf of a basic block (paper Section 3). Its
/// edge set Ef is the complement of Et, where Et is the undirected
/// transitive closure of the schedule graph Gs (built on symbolic
/// registers) plus all non-precedence machine constraints — pairs of
/// instructions that cannot share a cycle because they contend for a
/// single functional unit. By Lemma 1, a register-allocation-induced edge
/// (u, v) is a false dependence iff {u, v} is in Ef; equivalently, Ef
/// lists exactly the instruction pairs that may issue in the same cycle.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_CORE_FALSEDEPENDENCEGRAPH_H
#define PIRA_CORE_FALSEDEPENDENCEGRAPH_H

#include "support/UndirectedGraph.h"

namespace pira {

class DependenceGraph;
class Function;
class MachineModel;
class ThreadPool;

/// Gf for one basic block, along with the constraint set Et it derives
/// from.
class FalseDependenceGraph {
public:
  /// Builds Gf for block \p BlockIdx of \p F (which must be in symbolic
  /// form so Gs carries no anti/output register dependences) under
  /// \p Machine's constraints. \p ClosurePool, when non-null, closes
  /// independent schedule-graph components in parallel; the result is
  /// byte-identical either way.
  FalseDependenceGraph(const Function &F, unsigned BlockIdx,
                       const MachineModel &Machine,
                       ThreadPool *ClosurePool = nullptr);

  /// As above but reuses an already-built schedule graph \p Gs.
  FalseDependenceGraph(const Function &F, unsigned BlockIdx,
                       const DependenceGraph &Gs,
                       const MachineModel &Machine,
                       ThreadPool *ClosurePool = nullptr);

  /// Returns the number of instructions (vertices).
  unsigned size() const { return ParallelPairs.numVertices(); }

  /// Returns true when instructions \p U and \p V may issue in the same
  /// cycle ({U, V} in Ef).
  bool canIssueTogether(unsigned U, unsigned V) const {
    return ParallelPairs.hasEdge(U, V);
  }

  /// The edge set Ef as an undirected graph over instruction indices.
  const UndirectedGraph &parallelPairs() const { return ParallelPairs; }

  /// The constraint set Et: undirected closure edges plus machine
  /// constraint pairs. complement(Et) == Ef by construction.
  const UndirectedGraph &constraints() const { return Constraints; }

  /// Constraint pairs that came from machine contention rather than
  /// precedence (useful for rendering the paper's figures).
  const UndirectedGraph &machinePairs() const { return MachinePairs; }

private:
  void build(const Function &F, unsigned BlockIdx,
             const DependenceGraph &Gs, const MachineModel &Machine,
             ThreadPool *ClosurePool);

  UndirectedGraph Constraints;   // Et
  UndirectedGraph MachinePairs;  // machine-contention subset of Et
  UndirectedGraph ParallelPairs; // Ef
};

} // namespace pira

#endif // PIRA_CORE_FALSEDEPENDENCEGRAPH_H
