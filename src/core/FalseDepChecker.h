//===- core/FalseDepChecker.h - Post-allocation validation ------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Detects false dependences in allocated code, implementing the paper's
/// definition directly: an edge (u, v) of the post-allocation scheduling
/// graph is false iff u and v could be scheduled together according to
/// the schedule graph of the code in symbolic-register form (Lemma 1:
/// iff {u, v} ∈ Ef). Theorem 1 validation and the strategy benchmarks
/// both rest on this checker.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_CORE_FALSEDEPCHECKER_H
#define PIRA_CORE_FALSEDEPCHECKER_H

#include "analysis/DependenceGraph.h"

#include <vector>

namespace pira {

class Function;
class MachineModel;

/// One false dependence found in allocated code.
struct FalseDep {
  unsigned Block;
  unsigned From; ///< Instruction index within the block.
  unsigned To;
  DepKind Kind;  ///< Output (see below for why anti edges are excluded).
};

/// Compares \p Allocated against its pre-allocation twin \p Symbolic
/// (same blocks, same instruction positions — allocation is a pure
/// operand renaming) and returns every false dependence edge, block by
/// block.
///
/// Allocation introduces anti and output register dependences. Only
/// output dependences can forbid scheduling two instructions *together*
/// (two writes of one register cannot share a cycle): an anti edge
/// permits same-cycle issue because a superscalar reads operands before
/// writing results. This matches the paper exactly — its Figure 5
/// assignment itself creates an anti edge between co-issuable
/// instructions (`r2 = r1*r2` reads the r1 that `r1 = load x`
/// overwrites), and the Theorem 1 proof's anti-dependence case argues
/// such reuse is harmless rather than absent. So a false dependence is
/// an *output* edge whose endpoints are in the symbolic code's Ef.
std::vector<FalseDep> findFalseDependences(const Function &Symbolic,
                                           const Function &Allocated,
                                           const MachineModel &Machine);

/// Count of scheduling orderings lost to anti edges: anti dependences in
/// \p Allocated whose endpoints could symbolically issue in the same
/// cycle. Not false dependences (co-issue survives), but they do forbid
/// issuing the writer strictly before the reader; reported separately so
/// benchmarks can show the full picture.
unsigned countAntiOrderingLosses(const Function &Symbolic,
                                 const Function &Allocated,
                                 const MachineModel &Machine);

} // namespace pira

#endif // PIRA_CORE_FALSEDEPCHECKER_H
