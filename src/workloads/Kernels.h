//===- workloads/Kernels.h - Benchmark kernel programs ----------*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic kernel programs: the paper's two worked examples encoded
/// exactly (modulo the one-instruction `s3*5+s1` multiply-add, which maps
/// to a two-source fixed-point op with identical dependence structure),
/// plus the numeric kernels the evaluation sweeps over — chosen to span
/// the parallelism/pressure space: reduction chains (serial), unrolled
/// streaming loops (parallel, memory-bound), and mixed fixed/float work.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_WORKLOADS_KERNELS_H
#define PIRA_WORKLOADS_KERNELS_H

#include "ir/Function.h"

#include <string>
#include <vector>

namespace pira {

/// Example 1(b) of the paper: z/i loads feeding a fixed-point pair, with
/// the results stored in a second block so they stay live. Instructions
/// 0..4 of block 0 are the paper's s1..s5.
Function paperExample1();

/// Example 2 of the paper: the 9-instruction block for the
/// one-fixed-unit / one-float-unit / one-fetch-unit machine
/// (MachineModel::paperTwoUnit). Instructions 0..8 are s1..s9.
Function paperExample2();

/// Figure 6 shape: an if-then-else whose branches (and fall-through)
/// define the same variable, merged at a common use — exercises compound
/// (non-linear) live intervals in the web analysis.
Function figure6Diamond();

/// Dot product of a and b over one loop iteration body unrolled
/// \p Unroll times (loop over 64 elements).
Function dotProduct(unsigned Unroll = 4);

/// y[i] = alpha * x[i] + y[i], unrolled \p Unroll times per iteration.
Function saxpy(unsigned Unroll = 4);

/// FIR filter with \p Taps coefficient loads per output element.
Function firFilter(unsigned Taps = 4);

/// Horner evaluation of a degree-\p Degree polynomial: a serial
/// dependence chain with almost no parallelism.
Function horner(unsigned Degree = 8);

/// \p N independent complex multiplies (interleaved fixed/float work
/// with high instruction-level parallelism).
Function complexMultiply(unsigned N = 3);

/// Fully unrolled 2x2 matrix multiply.
Function matmul2x2();

/// Three-point stencil y[i] = (x[i-1] + x[i] + x[i+1]) / 3, unrolled.
Function stencil3(unsigned Unroll = 2);

/// Livermore loop 1 (hydro fragment):
/// x[k] = q + y[k] * (r * z[k+10] + t * z[k+11]), unrolled.
Function livermoreHydro(unsigned Unroll = 2);

/// Balanced binary reduction over \p Leaves loaded values — maximal tree
/// parallelism.
Function reductionTree(unsigned Leaves = 8);

/// Livermore loop 2 flavor (ICCG-style gather-multiply-accumulate with
/// two index streams), unrolled.
Function livermoreIccg(unsigned Unroll = 2);

/// Tridiagonal elimination sweep x[i] = z[i] * (y[i] - x[i-1]): a
/// loop-carried serial recurrence (the anti-parallel extreme).
Function tridiagonal();

/// Fully unrolled 3x3 matrix multiply (27 multiplies, heavy pressure).
Function matmul3x3();

/// 1-D convolution with a symmetric 5-tap kernel held in registers.
Function convolve5(unsigned Unroll = 1);

/// Two independent back-to-back loops (vector scale then vector add) —
/// exercises multi-loop CFGs and per-loop live ranges.
Function twoLoops();

/// A named kernel suite used by the strategy benchmarks: pairs of
/// (name, program).
std::vector<std::pair<std::string, Function>> standardKernelSuite();

} // namespace pira

#endif // PIRA_WORKLOADS_KERNELS_H
