//===- workloads/RandomProgram.cpp - Seeded program generator -------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "workloads/RandomProgram.h"

#include "ir/IRBuilder.h"
#include "support/Rng.h"

#include <cassert>
#include <vector>

using namespace pira;

namespace {

/// Emits one block's worth of random value-producing instructions,
/// tracking which registers are available as operands.
class BodyEmitter {
public:
  BodyEmitter(IRBuilder &B, Rng &R, const RandomProgramOptions &Opts)
      : B(B), R(R), Opts(Opts) {}

  /// Seeds the operand pool (registers defined on every path here).
  void addAvailable(Reg Rg) { Available.push_back(Rg); }

  /// Returns a random available register.
  Reg pick() {
    assert(!Available.empty() && "no operands available");
    return Available[R.nextBelow(Available.size())];
  }

  /// Emits \p Count random instructions into the current block.
  void emit(unsigned Count) {
    for (unsigned I = 0; I != Count; ++I)
      emitOne();
  }

  /// The most recently defined register (for a return value).
  Reg last() { return Available.back(); }

private:
  void emitOne() {
    if (R.chancePercent(Opts.MemoryPercent)) {
      // Memory op: in-bounds constant address; 50/50 load vs store once
      // we have anything to store.
      int64_t Addr = static_cast<int64_t>(R.nextBelow(ArraySize));
      if (R.chancePercent(50)) {
        Available.push_back(B.load("m", NoReg, Addr));
      } else {
        B.store("m", pick(), NoReg, Addr);
      }
      return;
    }
    if (R.chancePercent(Opts.FloatPercent)) {
      static const Opcode FloatOps[] = {Opcode::FAdd, Opcode::FSub,
                                        Opcode::FMul, Opcode::FDiv};
      Opcode Op = FloatOps[R.nextBelow(4)];
      Available.push_back(B.binary(Op, pick(), pick()));
      return;
    }
    static const Opcode IntOps[] = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                                    Opcode::And, Opcode::Or,  Opcode::Xor};
    Opcode Op = IntOps[R.nextBelow(6)];
    Available.push_back(B.binary(Op, pick(), pick()));
  }

  static constexpr unsigned ArraySize = 32;

  IRBuilder &B;
  Rng &R;
  const RandomProgramOptions &Opts;
  std::vector<Reg> Available;
};

} // namespace

Function pira::generateRandomProgram(const RandomProgramOptions &Opts) {
  Function F("random");
  IRBuilder B(F);
  Rng R(Opts.Seed);
  BodyEmitter Body(B, R, Opts);

  switch (Opts.Shape) {
  case CfgShape::Straight: {
    B.startBlock("entry");
    Body.addAvailable(B.load("m", NoReg, 0));
    Body.addAvailable(B.loadImm(R.nextInRange(1, 100)));
    Body.emit(Opts.InstructionsPerBlock);
    B.br(1);
    B.startBlock("body");
    Body.emit(Opts.InstructionsPerBlock);
    Reg Result = Body.last();
    B.store("m", Result, NoReg, 1);
    B.br(2);
    B.startBlock("exit");
    B.ret(Result);
    break;
  }
  case CfgShape::Diamond: {
    B.startBlock("entry");
    Body.addAvailable(B.load("m", NoReg, 0));
    Body.addAvailable(B.loadImm(R.nextInRange(1, 100)));
    Body.emit(Opts.InstructionsPerBlock);
    Reg Cond = Body.pick();
    B.condBr(Cond, 1, 2);

    // Each arm extends the entry pool privately; the join may only read
    // entry-defined values (defined on every path).
    B.startBlock("then");
    BodyEmitter Then = Body;
    Then.emit(Opts.InstructionsPerBlock);
    B.store("m", Then.last(), NoReg, 2);
    B.br(3);

    B.startBlock("else");
    BodyEmitter Else = Body;
    Else.emit(Opts.InstructionsPerBlock);
    B.store("m", Else.last(), NoReg, 3);
    B.br(3);

    B.startBlock("join");
    Body.emit(Opts.InstructionsPerBlock / 2);
    Reg Result = Body.last();
    B.store("m", Result, NoReg, 1);
    B.ret(Result);
    break;
  }
  case CfgShape::Loop: {
    B.startBlock("entry");
    Body.addAvailable(B.load("m", NoReg, 0));
    Reg Acc = B.loadImm(0);
    Reg I = B.loadImm(0);
    Reg N = B.loadImm(static_cast<int64_t>(4 + R.nextBelow(8)));
    Reg One = B.loadImm(1);
    Body.addAvailable(Acc);
    B.br(1);

    B.startBlock("loop");
    Body.emit(Opts.InstructionsPerBlock);
    B.binaryInto(Acc, Opcode::Add, Acc, Body.pick());
    B.binaryInto(I, Opcode::Add, I, One);
    Reg Cmp = B.binary(Opcode::CmpLt, I, N);
    B.condBr(Cmp, 1, 2);

    B.startBlock("exit");
    B.store("m", Acc, NoReg, 1);
    B.ret(Acc);
    break;
  }
  case CfgShape::NestedDiamond: {
    B.startBlock("entry"); // 0
    Body.addAvailable(B.load("m", NoReg, 0));
    Body.addAvailable(B.loadImm(R.nextInRange(1, 100)));
    Body.emit(Opts.InstructionsPerBlock);
    B.condBr(Body.pick(), 1, 4);

    B.startBlock("outer_then"); // 1: contains an inner diamond
    BodyEmitter Then = Body;
    Then.emit(Opts.InstructionsPerBlock / 2);
    B.condBr(Then.pick(), 2, 3);

    B.startBlock("inner_then"); // 2
    BodyEmitter Inner = Then;
    Inner.emit(Opts.InstructionsPerBlock / 2);
    B.store("m", Inner.last(), NoReg, 4);
    B.br(5);

    B.startBlock("inner_else"); // 3
    BodyEmitter InnerElse = Then;
    InnerElse.emit(Opts.InstructionsPerBlock / 2);
    B.store("m", InnerElse.last(), NoReg, 5);
    B.br(5);

    B.startBlock("outer_else"); // 4
    BodyEmitter Else = Body;
    Else.emit(Opts.InstructionsPerBlock);
    B.store("m", Else.last(), NoReg, 6);
    B.br(5);

    B.startBlock("join"); // 5
    Body.emit(Opts.InstructionsPerBlock / 2);
    Reg Result = Body.last();
    B.store("m", Result, NoReg, 1);
    B.ret(Result);
    break;
  }
  case CfgShape::DoubleLoop: {
    B.startBlock("entry"); // 0
    Body.addAvailable(B.load("m", NoReg, 0));
    Reg Acc = B.loadImm(0);
    Reg I = B.loadImm(0);
    Reg N = B.loadImm(static_cast<int64_t>(3 + R.nextBelow(5)));
    Reg One = B.loadImm(1);
    Body.addAvailable(Acc);
    B.br(1);

    B.startBlock("loop1"); // 1
    Body.emit(Opts.InstructionsPerBlock);
    B.binaryInto(Acc, Opcode::Add, Acc, Body.pick());
    B.binaryInto(I, Opcode::Add, I, One);
    Reg Cmp1 = B.binary(Opcode::CmpLt, I, N);
    B.condBr(Cmp1, 1, 2);

    B.startBlock("mid"); // 2
    Reg J = B.loadImm(0);
    B.br(3);

    B.startBlock("loop2"); // 3
    Body.emit(Opts.InstructionsPerBlock / 2);
    B.binaryInto(Acc, Opcode::Xor, Acc, Body.pick());
    B.binaryInto(J, Opcode::Add, J, One);
    Reg Cmp2 = B.binary(Opcode::CmpLt, J, N);
    B.condBr(Cmp2, 3, 4);

    B.startBlock("exit"); // 4
    B.store("m", Acc, NoReg, 1);
    B.ret(Acc);
    break;
  }
  }
  F.declareArray("m", 32);
  return F;
}
