//===- workloads/RandomProgram.h - Seeded program generator -----*- C++ -*-===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic random generator of well-formed symbolic-register
/// programs, used by property tests (Theorems 1/2, semantic preservation)
/// and by the randomized sweeps. Every operand reads an
/// already-defined register, addresses stay within declared bounds, and
/// the CFG shape is chosen among straight-line, diamond, and counted
/// loop.
///
//===----------------------------------------------------------------------===//

#ifndef PIRA_WORKLOADS_RANDOMPROGRAM_H
#define PIRA_WORKLOADS_RANDOMPROGRAM_H

#include "ir/Function.h"

#include <cstdint>

namespace pira {

/// Shape of the generated CFG.
enum class CfgShape {
  Straight,      ///< entry -> body -> exit
  Diamond,       ///< entry -> (then | else) -> join
  Loop,          ///< entry -> counted loop body -> exit
  NestedDiamond, ///< a diamond whose then-arm contains another diamond
  DoubleLoop,    ///< two sequential counted loops
};

/// Generation parameters.
struct RandomProgramOptions {
  unsigned InstructionsPerBlock = 16; ///< Value-producing ops per block.
  unsigned FloatPercent = 40;        ///< Share routed to the FPU.
  unsigned MemoryPercent = 30;       ///< Share that are loads/stores.
  CfgShape Shape = CfgShape::Straight;
  uint64_t Seed = 1;
};

/// Builds a verifier-clean random program.
Function generateRandomProgram(const RandomProgramOptions &Opts);

} // namespace pira

#endif // PIRA_WORKLOADS_RANDOMPROGRAM_H
