//===- workloads/Kernels.cpp - Benchmark kernel programs ------------------===//
//
// Part of PIRA, a reproduction of Pinter's PLDI'93 combined register
// allocation / instruction scheduling framework.
//
//===----------------------------------------------------------------------===//

#include "workloads/Kernels.h"

#include "ir/IRBuilder.h"

#include <cassert>

using namespace pira;

Function pira::paperExample1() {
  // Paper (a):  x := a[i];  y := z + z;  z := x*5 + z  — with z preloaded
  // into s1 and i into s2. The single-instruction s5 := s3*5 + s1 maps to
  // mul(s3, s1): same operands, same fixed-point unit, same dependences.
  Function F("example1");
  IRBuilder B(F);
  B.startBlock("body");
  Reg S1 = B.load("z", NoReg, 0);          // s1 := load z
  Reg S2 = B.loadImm(7);                   // s2 := i
  Reg S3 = B.load("a", S2, 0);             // s3 := a[s2]
  Reg S4 = B.binary(Opcode::Add, S1, S1);  // s4 := s1 + s1
  Reg S5 = B.binary(Opcode::Mul, S3, S1);  // s5 := s3*5 + s1 (see above)
  B.br(1);
  B.startBlock("exit");
  B.store("y", S4, NoReg, 0);
  B.store("z", S5, NoReg, 0);
  B.ret();
  F.declareArray("z", 1);
  F.declareArray("y", 1);
  return F;
}

Function pira::paperExample2() {
  Function F("example2");
  IRBuilder B(F);
  B.startBlock("body");
  Reg S1 = B.load("z", NoReg, 0);           // s1 := load z   (fixed)
  Reg S2 = B.load("y", NoReg, 0);           // s2 := load y   (fixed)
  Reg S3 = B.binary(Opcode::Add, S1, S2);   // s3 := s1 + s2
  Reg S4 = B.binary(Opcode::Mul, S1, S2);   // s4 := s1 * s2
  Reg S5 = B.binary(Opcode::Add, S3, S4);   // s5 := s3 + s4
  Reg S6 = B.load("x", NoReg, 0);           // s6 := load x   (float)
  Reg S7 = B.load("w", NoReg, 0);           // s7 := load w   (float)
  Reg S8 = B.binary(Opcode::FMul, S7, S6);  // s8 := s7 * s6
  Reg S9 = B.binary(Opcode::FAdd, S5, S8);  // s9 := s5 + s8
  B.ret(S9);
  F.declareArray("z", 1);
  F.declareArray("y", 1);
  F.declareArray("x", 1);
  F.declareArray("w", 1);
  return F;
}

Function pira::figure6Diamond() {
  // Three definitions of one variable x reaching one use (paper Fig. 6):
  //   entry: x := 1;           branch to mid or join
  //   mid:   x := c2 + c2;     branch to last or join
  //   last:  x := c2 * c2;     fall into join
  //   join:  use x
  // All three defs write the same symbolic register; the web analysis
  // must merge the def-use chains into a single compound interval.
  Function F("figure6");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg C1 = B.load("c", NoReg, 0);
  Reg C2 = B.load("c", NoReg, 1);
  Reg X = B.loadImm(1); // def 1
  B.condBr(C1, 1, 3);

  B.startBlock("mid");
  B.binaryInto(X, Opcode::Add, C2, C2); // def 2
  B.condBr(C2, 2, 3);

  B.startBlock("last");
  B.binaryInto(X, Opcode::Mul, C2, C2); // def 3
  B.br(3);

  B.startBlock("join");
  B.ret(X);
  F.declareArray("c", 2);
  return F;
}

/// Appends the canonical counted-loop tail to the current block: bump the
/// induction register by \p Step, compare against \p Bound, and branch
/// back to \p LoopBlock or on to \p ExitBlock.
static void loopTail(IRBuilder &B, Reg Induction, Reg StepReg, Reg Bound,
                     unsigned LoopBlock, unsigned ExitBlock) {
  B.binaryInto(Induction, Opcode::Add, Induction, StepReg);
  Reg Cmp = B.binary(Opcode::CmpLt, Induction, Bound);
  B.condBr(Cmp, LoopBlock, ExitBlock);
}

Function pira::dotProduct(unsigned Unroll) {
  assert(Unroll >= 1 && "unroll factor must be positive");
  Function F("dotproduct");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Sum = B.loadImm(0);
  Reg I = B.loadImm(0);
  Reg N = B.loadImm(64);
  Reg Step = B.loadImm(static_cast<int64_t>(Unroll));
  B.br(1);

  B.startBlock("loop");
  for (unsigned U = 0; U != Unroll; ++U) {
    Reg A = B.load("a", I, static_cast<int64_t>(U));
    Reg Bv = B.load("b", I, static_cast<int64_t>(U));
    Reg Prod = B.binary(Opcode::FMul, A, Bv);
    B.binaryInto(Sum, Opcode::FAdd, Sum, Prod);
  }
  loopTail(B, I, Step, N, 1, 2);

  B.startBlock("exit");
  B.ret(Sum);
  F.declareArray("a", 64);
  F.declareArray("b", 64);
  return F;
}

Function pira::saxpy(unsigned Unroll) {
  assert(Unroll >= 1 && "unroll factor must be positive");
  Function F("saxpy");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Alpha = B.load("alpha", NoReg, 0);
  Reg I = B.loadImm(0);
  Reg N = B.loadImm(64);
  Reg Step = B.loadImm(static_cast<int64_t>(Unroll));
  B.br(1);

  B.startBlock("loop");
  for (unsigned U = 0; U != Unroll; ++U) {
    Reg X = B.load("x", I, static_cast<int64_t>(U));
    Reg Y = B.load("y", I, static_cast<int64_t>(U));
    Reg AX = B.binary(Opcode::FMul, Alpha, X);
    Reg R = B.binary(Opcode::FAdd, AX, Y);
    B.store("y", R, I, static_cast<int64_t>(U));
  }
  loopTail(B, I, Step, N, 1, 2);

  B.startBlock("exit");
  B.ret();
  F.declareArray("alpha", 1);
  F.declareArray("x", 64);
  F.declareArray("y", 64);
  return F;
}

Function pira::firFilter(unsigned Taps) {
  assert(Taps >= 1 && "need at least one tap");
  Function F("fir");
  IRBuilder B(F);
  B.startBlock("entry");
  // Coefficients stay in registers across the loop (live-through webs).
  std::vector<Reg> Coef;
  for (unsigned T = 0; T != Taps; ++T)
    Coef.push_back(B.load("h", NoReg, static_cast<int64_t>(T)));
  Reg I = B.loadImm(0);
  Reg N = B.loadImm(48);
  Reg One = B.loadImm(1);
  B.br(1);

  B.startBlock("loop");
  Reg Acc = B.loadImm(0);
  for (unsigned T = 0; T != Taps; ++T) {
    Reg X = B.load("x", I, static_cast<int64_t>(T));
    Reg P = B.binary(Opcode::FMul, Coef[T], X);
    B.binaryInto(Acc, Opcode::FAdd, Acc, P);
  }
  B.store("out", Acc, I, 0);
  loopTail(B, I, One, N, 1, 2);

  B.startBlock("exit");
  B.ret();
  F.declareArray("h", Taps);
  F.declareArray("x", 64);
  F.declareArray("out", 64);
  return F;
}

Function pira::horner(unsigned Degree) {
  assert(Degree >= 1 && "degree must be positive");
  Function F("horner");
  IRBuilder B(F);
  B.startBlock("body");
  Reg X = B.load("x", NoReg, 0);
  Reg Acc = B.load("coef", NoReg, 0);
  for (unsigned D = 1; D <= Degree; ++D) {
    Reg C = B.load("coef", NoReg, static_cast<int64_t>(D));
    Reg Mul = B.binary(Opcode::FMul, Acc, X);
    Acc = B.binary(Opcode::FAdd, Mul, C);
  }
  B.ret(Acc);
  F.declareArray("x", 1);
  F.declareArray("coef", Degree + 1);
  return F;
}

Function pira::complexMultiply(unsigned N) {
  assert(N >= 1 && "need at least one multiply");
  Function F("cmul");
  IRBuilder B(F);
  B.startBlock("body");
  for (unsigned K = 0; K != N; ++K) {
    int64_t Base = static_cast<int64_t>(2 * K);
    Reg Ar = B.load("a", NoReg, Base);
    Reg Ai = B.load("a", NoReg, Base + 1);
    Reg Br2 = B.load("b", NoReg, Base);
    Reg Bi = B.load("b", NoReg, Base + 1);
    Reg RR = B.binary(Opcode::FMul, Ar, Br2);
    Reg II = B.binary(Opcode::FMul, Ai, Bi);
    Reg RI = B.binary(Opcode::FMul, Ar, Bi);
    Reg IR = B.binary(Opcode::FMul, Ai, Br2);
    Reg Re = B.binary(Opcode::FSub, RR, II);
    Reg Im = B.binary(Opcode::FAdd, RI, IR);
    B.store("out", Re, NoReg, Base);
    B.store("out", Im, NoReg, Base + 1);
  }
  B.ret();
  F.declareArray("a", 2 * N);
  F.declareArray("b", 2 * N);
  F.declareArray("out", 2 * N);
  return F;
}

Function pira::matmul2x2() {
  Function F("matmul2");
  IRBuilder B(F);
  B.startBlock("body");
  Reg A[2][2], Bm[2][2];
  for (unsigned R = 0; R != 2; ++R)
    for (unsigned C = 0; C != 2; ++C) {
      A[R][C] = B.load("ma", NoReg, static_cast<int64_t>(2 * R + C));
      Bm[R][C] = B.load("mb", NoReg, static_cast<int64_t>(2 * R + C));
    }
  for (unsigned R = 0; R != 2; ++R)
    for (unsigned C = 0; C != 2; ++C) {
      Reg P0 = B.binary(Opcode::FMul, A[R][0], Bm[0][C]);
      Reg P1 = B.binary(Opcode::FMul, A[R][1], Bm[1][C]);
      Reg S = B.binary(Opcode::FAdd, P0, P1);
      B.store("mc", S, NoReg, static_cast<int64_t>(2 * R + C));
    }
  B.ret();
  F.declareArray("ma", 4);
  F.declareArray("mb", 4);
  F.declareArray("mc", 4);
  return F;
}

Function pira::stencil3(unsigned Unroll) {
  assert(Unroll >= 1 && "unroll factor must be positive");
  Function F("stencil3");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg I = B.loadImm(1);
  Reg N = B.loadImm(62);
  Reg Step = B.loadImm(static_cast<int64_t>(Unroll));
  Reg Three = B.loadImm(3);
  B.br(1);

  B.startBlock("loop");
  for (unsigned U = 0; U != Unroll; ++U) {
    int64_t Off = static_cast<int64_t>(U);
    Reg L = B.load("x", I, Off - 1);
    Reg M = B.load("x", I, Off);
    Reg R = B.load("x", I, Off + 1);
    Reg S0 = B.binary(Opcode::FAdd, L, M);
    Reg S1 = B.binary(Opcode::FAdd, S0, R);
    Reg Avg = B.binary(Opcode::FDiv, S1, Three);
    B.store("yout", Avg, I, Off);
  }
  loopTail(B, I, Step, N, 1, 2);

  B.startBlock("exit");
  B.ret();
  F.declareArray("x", 64);
  F.declareArray("yout", 64);
  return F;
}

Function pira::livermoreHydro(unsigned Unroll) {
  assert(Unroll >= 1 && "unroll factor must be positive");
  Function F("hydro");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Q = B.load("q", NoReg, 0);
  Reg Rc = B.load("r", NoReg, 0);
  Reg T = B.load("t", NoReg, 0);
  Reg I = B.loadImm(0);
  Reg N = B.loadImm(40);
  Reg Step = B.loadImm(static_cast<int64_t>(Unroll));
  B.br(1);

  B.startBlock("loop");
  for (unsigned U = 0; U != Unroll; ++U) {
    int64_t Off = static_cast<int64_t>(U);
    Reg Z10 = B.load("z", I, Off + 10);
    Reg Z11 = B.load("z", I, Off + 11);
    Reg RZ = B.binary(Opcode::FMul, Rc, Z10);
    Reg TZ = B.binary(Opcode::FMul, T, Z11);
    Reg Inner = B.binary(Opcode::FAdd, RZ, TZ);
    Reg Y = B.load("yv", I, Off);
    Reg YI = B.binary(Opcode::FMul, Y, Inner);
    Reg Xv = B.binary(Opcode::FAdd, Q, YI);
    B.store("xout", Xv, I, Off);
  }
  loopTail(B, I, Step, N, 1, 2);

  B.startBlock("exit");
  B.ret();
  F.declareArray("q", 1);
  F.declareArray("r", 1);
  F.declareArray("t", 1);
  F.declareArray("z", 64);
  F.declareArray("yv", 64);
  F.declareArray("xout", 64);
  return F;
}

Function pira::reductionTree(unsigned Leaves) {
  assert(Leaves >= 2 && "need at least two leaves");
  Function F("reduce");
  IRBuilder B(F);
  B.startBlock("body");
  std::vector<Reg> Level;
  for (unsigned L = 0; L != Leaves; ++L)
    Level.push_back(B.load("a", NoReg, static_cast<int64_t>(L)));
  while (Level.size() > 1) {
    std::vector<Reg> Next;
    for (size_t K = 0; K + 1 < Level.size(); K += 2)
      Next.push_back(B.binary(Opcode::FAdd, Level[K], Level[K + 1]));
    if (Level.size() % 2 != 0)
      Next.push_back(Level.back());
    Level = std::move(Next);
  }
  B.ret(Level[0]);
  F.declareArray("a", Leaves);
  return F;
}

Function pira::livermoreIccg(unsigned Unroll) {
  assert(Unroll >= 1 && "unroll factor must be positive");
  Function F("iccg");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg I = B.loadImm(0);
  Reg N = B.loadImm(24);
  Reg Step = B.loadImm(static_cast<int64_t>(Unroll));
  B.br(1);

  B.startBlock("loop");
  for (unsigned U = 0; U != Unroll; ++U) {
    int64_t Off = static_cast<int64_t>(U);
    // x[i] = x[i] - v[i]*x[i+8] - v[i+8]*x[i+16] (gathered streams).
    Reg X0 = B.load("x", I, Off);
    Reg V0 = B.load("v", I, Off);
    Reg X1 = B.load("x", I, Off + 8);
    Reg V1 = B.load("v", I, Off + 8);
    Reg X2 = B.load("x", I, Off + 16);
    Reg P0 = B.binary(Opcode::FMul, V0, X1);
    Reg P1 = B.binary(Opcode::FMul, V1, X2);
    Reg D0 = B.binary(Opcode::FSub, X0, P0);
    Reg D1 = B.binary(Opcode::FSub, D0, P1);
    B.store("xnew", D1, I, Off);
  }
  loopTail(B, I, Step, N, 1, 2);

  B.startBlock("exit");
  B.ret();
  F.declareArray("x", 64);
  F.declareArray("v", 64);
  F.declareArray("xnew", 64);
  return F;
}

Function pira::tridiagonal() {
  Function F("tridiag");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Carry = B.load("x", NoReg, 0); // x[0]
  Reg I = B.loadImm(1);
  Reg N = B.loadImm(32);
  Reg One = B.loadImm(1);
  B.br(1);

  B.startBlock("loop");
  // x[i] = z[i] * (y[i] - x[i-1]): the recurrence keeps Carry live
  // around the back edge and serializes iterations.
  Reg Y = B.load("y", I, 0);
  Reg Z = B.load("z", I, 0);
  Reg Diff = B.binary(Opcode::FSub, Y, Carry);
  B.binaryInto(Carry, Opcode::FMul, Z, Diff);
  B.store("x", Carry, I, 0);
  loopTail(B, I, One, N, 1, 2);

  B.startBlock("exit");
  B.ret(Carry);
  F.declareArray("x", 64);
  F.declareArray("y", 64);
  F.declareArray("z", 64);
  return F;
}

Function pira::matmul3x3() {
  Function F("matmul3");
  IRBuilder B(F);
  B.startBlock("body");
  Reg A[3][3], Bm[3][3];
  for (unsigned R = 0; R != 3; ++R)
    for (unsigned C = 0; C != 3; ++C) {
      A[R][C] = B.load("ma", NoReg, static_cast<int64_t>(3 * R + C));
      Bm[R][C] = B.load("mb", NoReg, static_cast<int64_t>(3 * R + C));
    }
  for (unsigned R = 0; R != 3; ++R)
    for (unsigned C = 0; C != 3; ++C) {
      Reg P0 = B.binary(Opcode::FMul, A[R][0], Bm[0][C]);
      Reg Acc = B.fma(A[R][1], Bm[1][C], P0);
      Acc = B.fma(A[R][2], Bm[2][C], Acc);
      B.store("mc", Acc, NoReg, static_cast<int64_t>(3 * R + C));
    }
  B.ret();
  F.declareArray("ma", 9);
  F.declareArray("mb", 9);
  F.declareArray("mc", 9);
  return F;
}

Function pira::convolve5(unsigned Unroll) {
  assert(Unroll >= 1 && "unroll factor must be positive");
  Function F("conv5");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg K0 = B.load("k", NoReg, 0);
  Reg K1 = B.load("k", NoReg, 1);
  Reg K2 = B.load("k", NoReg, 2);
  Reg I = B.loadImm(2);
  Reg N = B.loadImm(60);
  Reg Step = B.loadImm(static_cast<int64_t>(Unroll));
  B.br(1);

  B.startBlock("loop");
  for (unsigned U = 0; U != Unroll; ++U) {
    int64_t Off = static_cast<int64_t>(U);
    // Symmetric taps: k2*(x[i-2]+x[i+2]) + k1*(x[i-1]+x[i+1]) + k0*x[i].
    Reg Xm2 = B.load("x", I, Off - 2);
    Reg Xp2 = B.load("x", I, Off + 2);
    Reg Xm1 = B.load("x", I, Off - 1);
    Reg Xp1 = B.load("x", I, Off + 1);
    Reg X0 = B.load("x", I, Off);
    Reg S2 = B.binary(Opcode::FAdd, Xm2, Xp2);
    Reg S1 = B.binary(Opcode::FAdd, Xm1, Xp1);
    Reg T = B.binary(Opcode::FMul, K2, S2);
    T = B.fma(K1, S1, T);
    T = B.fma(K0, X0, T);
    B.store("out", T, I, Off);
  }
  loopTail(B, I, Step, N, 1, 2);

  B.startBlock("exit");
  B.ret();
  F.declareArray("k", 3);
  F.declareArray("x", 64);
  F.declareArray("out", 64);
  return F;
}

Function pira::twoLoops() {
  Function F("twoloops");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Scale = B.load("alpha", NoReg, 0);
  Reg I = B.loadImm(0);
  Reg N = B.loadImm(32);
  Reg One = B.loadImm(1);
  B.br(1);

  B.startBlock("scaleloop");
  Reg X = B.load("x", I, 0);
  Reg SX = B.binary(Opcode::FMul, Scale, X);
  B.store("x", SX, I, 0);
  loopTail(B, I, One, N, 1, 2);

  B.startBlock("mid");
  Reg J = B.loadImm(0);
  B.br(3);

  B.startBlock("addloop");
  Reg XV = B.load("x", J, 0);
  Reg YV = B.load("y", J, 0);
  Reg S = B.binary(Opcode::FAdd, XV, YV);
  B.store("y", S, J, 0);
  loopTail(B, J, One, N, 3, 4);

  B.startBlock("exit");
  B.ret();
  F.declareArray("alpha", 1);
  F.declareArray("x", 64);
  F.declareArray("y", 64);
  return F;
}

std::vector<std::pair<std::string, Function>> pira::standardKernelSuite() {
  std::vector<std::pair<std::string, Function>> Suite;
  Suite.emplace_back("example1", paperExample1());
  Suite.emplace_back("example2", paperExample2());
  Suite.emplace_back("dot-u4", dotProduct(4));
  Suite.emplace_back("saxpy-u4", saxpy(4));
  Suite.emplace_back("fir-t4", firFilter(4));
  Suite.emplace_back("horner-d8", horner(8));
  Suite.emplace_back("cmul-3", complexMultiply(3));
  Suite.emplace_back("matmul2", matmul2x2());
  Suite.emplace_back("stencil-u2", stencil3(2));
  Suite.emplace_back("hydro-u2", livermoreHydro(2));
  Suite.emplace_back("reduce-8", reductionTree(8));
  Suite.emplace_back("iccg-u2", livermoreIccg(2));
  Suite.emplace_back("tridiag", tridiagonal());
  Suite.emplace_back("matmul3", matmul3x3());
  Suite.emplace_back("conv5-u1", convolve5(1));
  Suite.emplace_back("twoloops", twoLoops());
  return Suite;
}
